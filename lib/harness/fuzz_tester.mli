(** Fuzz harness (paper §4, "bombard the Crossing Guard with a stream of
    random coherence messages to random addresses").

    Replaces the accelerator with {!Xguard_accel.Chaos_accel} while CPU cores
    run checked random traffic on the same small address pool.  Safety means:
    the run never raises, never deadlocks, every CPU operation completes, and
    every CPU load still observes coherent data — no matter what arrives on
    the accelerator link.  Guarantee violations are *expected* here; their
    count is reported.

    Under a multi-guard topology ({!Config.t.topology}) the chaos accelerator
    takes over guard 0's link only; the remaining guards keep their modeled
    accelerators, and their ports are driven as load-only consumer cores in
    the same checked run (except with the [Disjoint] pool, which denies
    accelerators the CPU addresses).  Their completion extends the safety
    property across guards: chaos on one link must not wedge or starve the
    neighbors. *)

type crash_info = {
  exn_text : string;  (** the exception that escaped the run — a failure *)
  seed : int;  (** [cfg.seed]; rerun with it to replay the interleaving *)
  trace_tail : Xguard_trace.Trace.event list;
      (** last events of the armed trace buffer, oldest first (empty when the
          run was not traced) *)
}

type outcome = {
  chaos_messages : int;
  invalidations_ignored : int;
  cpu_ops_completed : int;
  cpu_ops_expected : int;
  cpu_data_errors : int;
  violations : int;
  violations_by_kind : (Xguard_xg.Os_model.error_kind * int) list;
  deadlocked : bool;
  crashed : crash_info option;
  seed : int;  (** the config seed that reproduces this run *)
  first_error_addr : int option;  (** block of the first CPU data error *)
  trace_tail : Xguard_trace.Trace.event list;
      (** on any failure (crash, deadlock or data error): the last armed-trace
          events, restricted to [first_error_addr] when one is known *)
  trace_dropped : int;
      (** events the trace ring had already overwritten when [trace_tail] was
          cut — forensics readers should know the trail is incomplete *)
  coverage_sets :
    (string * Xguard_trace.Coverage.space * Xguard_stats.Counter.Group.t list) list;
      (** the system's transition-coverage groups, for cross-run merging *)
  link_faults : (string * int) list;
      (** reliability-layer counters and injected-fault tallies for the XG
          link ([System.link_stats]); [[]] when the link cannot fault *)
  quarantined : bool;
      (** the guard escalated link faults all the way to quarantine *)
  rejoins : int;
      (** completed reset handshakes, summed over guards (PR 8 recovery) *)
  permakilled : bool;
      (** some guard exhausted its recovery lives and killed the link for
          good *)
  budget_trips : int;  (** per-phase hang-budget violations, summed over guards *)
}

(** How the chaos accelerator's address pool relates to the CPUs':

    - [Shared_rw]: same blocks, accelerator has write permission.  The fuzzer
      can then *legitimately* own blocks and store garbage in them, so CPU
      data checks are only advisory (the paper's Guarantee 2 discussion:
      Crossing Guard cannot protect data the accelerator may write).
    - [Disjoint]: the CPUs use different blocks; their data must stay exact.
    - [Shared_ro]: same blocks, accelerator limited to read-only — Guarantee
      0b then implies the CPUs' data must stay exact even under fuzzing. *)
type pool = Shared_rw | Disjoint | Shared_ro

val merge : outcome -> outcome -> outcome
(** Pure aggregation for sharded fuzz sweeps.  Counts add;
    [violations_by_kind] is re-derived in the canonical
    {!Xguard_xg.Os_model.all_error_kinds} order; [deadlocked] ORs; [crashed],
    [first_error_addr] and [trace_tail] keep the leftmost failure; [seed]
    keeps the left run's seed (the replay handle for that first failure);
    coverage groups concatenate per controller kind; [link_faults] sums by
    label (left order first); [quarantined] ORs.  Associative, so N workers'
    outcomes fold in job order into the outcome of the equivalent serial
    sweep. *)

val run :
  Config.t ->
  ?pool:pool ->
  ?cpu_ops:int ->
  ?chaos_period:int ->
  ?chaos_duration:int ->
  ?respond_probability:float ->
  ?requests_only:bool ->
  ?tarpit:int ->
  ?num_addresses:int ->
  ?trace:Xguard_trace.Trace.t ->
  unit ->
  outcome
(** [Config.t] must be an XG organization.  Default pool is [Shared_rw].
    [tarpit] switches the chaos accelerator to slow-but-honest Invalidate
    replies that many cycles late (see {!Xguard_accel.Chaos_accel.create}).
    [trace] arms the given ring buffer for the duration of the run (restoring
    whatever was armed before); on failure the outcome carries its tail. *)
