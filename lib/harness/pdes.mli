(** Conservative parallel discrete-event simulation (intra-run [--sim-j]).

    Shards one run into per-domain {!Xguard_sim.Engine} instances along the
    guard links — domain 0 is the host side, domain [g + 1] guard [g]'s
    accelerator stack — and executes them over conservative time windows: if
    the earliest pending event anywhere is at [m] and the smallest guard-link
    latency is [L], every domain may fire through [m + L - 1] before any
    cross-domain message can arrive.  Deferred observability ops and
    cross-domain deliveries are replayed at the window barrier in canonical
    (time, domain, sequence) order.

    The decomposition, window bounds and replay order depend only on the
    configuration and simulated time, so output is byte-identical for every
    worker count (the workers only decide which thread runs a domain's
    window).  See DESIGN.md section 13 for the full argument. *)

val check_config : Config.t -> (unit, string) result
(** Whether a configuration is eligible for sharded execution.  Rejected:
    guard-less organizations, link fault injection / reliability, recovery
    policies, rate limiting, unordered guard links and jittered topology
    links (no fixed lookahead).  The [Error] is a user-facing reason. *)

val lookahead : Config.t -> int
(** The conservative lookahead [L]: the smallest guard-link Ordered latency
    (always >= 1). *)

type t
(** A window coordinator over a system built with [System.build ~pdes:true]. *)

val create : System.t -> t
(** @raise Invalid_argument if the system was not built with [~pdes:true]. *)

val domains : t -> int
(** Number of logical domains (guards + 1). *)

val engine_of : t -> dom:int -> Xguard_sim.Engine.t
(** Domain [dom]'s engine; [engine_of t ~dom:0] is the host engine. *)

val accel_port_domains : System.t -> int array
(** Per-[System.accel_ports]-index owning domain — drivers use it to create
    sequencers on the engine their port schedules on. *)

val events_fired : t -> int
(** Total events fired across all domain engines. *)

val cycles : t -> int
(** The run's clock: the furthest domain engine time. *)

type run_result = Drained | Hit_event_limit

val run_windows : ?max_events:int -> workers:int -> t -> run_result
(** Run the window loop to quiescence (or until [max_events] total events,
    checked at barriers).  [workers] sizes the worker team; any value >= 1
    produces identical simulation results.  Gauge samples for an armed span
    recorder are taken at barriers, at exactly the period multiples the
    sequential sampler would have used. *)

val run_stress :
  workers:int ->
  seed:int ->
  ops_per_core:int ->
  ?event_limit:int ->
  Config.t ->
  System.t * Random_tester.outcome
(** The sharded random-coherence stress run: builds the system with
    [~pdes:true], arms one {!Random_tester} per domain (domain 0 on the CPU
    ports, domain [g + 1] on guard [g]'s ports, each over a disjoint
    6-block address slice, RNG derived from [(seed, domain)]), runs the
    window loop and merges the per-domain outcomes ([cycles] is the run
    clock, not the per-domain sum).  The workload decomposition differs from
    the sequential tester's (which shares addresses across all ports), so
    outcomes are comparable across worker counts — not with [--sim-j]-less
    runs. *)
