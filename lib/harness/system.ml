module Engine = Xguard_sim.Engine
module Rng = Xguard_sim.Rng
module H = Xguard_host_hammer
module M = Xguard_host_mesi
module Xg = Xguard_xg
module A = Xguard_accel
module Spans = Xguard_obs.Spans

type t = {
  config : Config.t;
  engine : Engine.t;
  rng : Rng.t;
  memory : Memory_model.t;
  perms : Xg.Perm_table.t;
  os : Xg.Os_model.t;
  cpu_ports : Access.port array;
  accel_ports : Access.port array;
  xg_core : Xg.Xg_core.t option;
  accel_link : Xg.Xg_iface.Link.t option;
  xg_node_on_link : Node.t option;
  accel_node_on_link : Node.t option;
  accel_l1s : A.L1_simple.t array;
  accel_l2 : A.L2_shared.t option;
  accel_internal_link : Xg.Xg_iface.Link.t option;
  host_net_bytes : unit -> int;
  host_net_messages : unit -> int;
  xg_port_to_host_bytes : unit -> int;
  link_bytes : unit -> int;
  coverage_groups : unit -> (string * Xguard_stats.Counter.Group.t) list;
  coverage_sets :
    unit ->
    (string * Xguard_trace.Coverage.space * Xguard_stats.Counter.Group.t list) list;
  stats_groups : unit -> (string * Xguard_stats.Counter.Group.t) list;
  set_host_monitor : (src:string -> dst:string -> addr:int -> text:string -> unit) -> unit;
  link_stats : unit -> (string * int) list;
  quarantined : unit -> bool;
  check_enable : unit -> unit;
  check_set_delay_chooser : (lo:int -> hi:int -> int) -> unit;
  check_fingerprint : Buffer.t -> unit;
  check_invariant : unit -> string option;
  check_quiescent_invariant : unit -> string option;
  check_cpu_ctrls : int array;
  check_accel_ctrls : int array;
}

let coverage_reports t =
  List.map
    (fun (_, space, groups) -> Xguard_trace.Coverage.analyze space groups)
    (t.coverage_sets ())

(* Trace adapter for the XG link message vocabulary (both the guard link and
   the accelerator-internal network speak it). *)
let link_tracer msg =
  (Addr.to_int (Xg.Xg_iface.msg_addr msg), Format.asprintf "%a" Xg.Xg_iface.pp_msg msg)

(* Fault-layer reporting, gated on injection actually being possible on this
   link (wire cut, scripts, or a live probability) so fault-free runs render
   byte-for-byte like pre-fault builds. *)
let fault_coverage_sets ~xg_core ~accel_link () =
  match accel_link with
  | Some l when Xg.Xg_iface.Link.faults_active l ->
      ("xg.link", Xg.Xg_iface.Link.coverage_space, [ Xg.Xg_iface.Link.coverage l ])
      :: (match xg_core with
         | Some c ->
             [ ("xg.fault", Xg.Xg_core.fault_coverage_space, [ Xg.Xg_core.fault_coverage c ]) ]
         | None -> [])
  | _ -> []

let fault_link_stats ~accel_link () =
  match accel_link with
  | Some l when Xg.Xg_iface.Link.faults_active l ->
      Xguard_stats.Counter.Group.to_list (Xg.Xg_iface.Link.link_stats l)
      @ Xguard_network.Network.Fault.counts_to_list (Xg.Xg_iface.Link.fault_counts l)
  | _ -> []

let xg_quarantined ~xg_core () =
  match xg_core with Some c -> Xg.Xg_core.quarantined c | None -> false

(* ---- model-checker hooks (lib/check) ----

   The invariants below speak a protocol-agnostic stability lattice: [`S]
   shared, [`E] exclusive clean, [`O] owned with possible sharers, [`M]
   modified, [`T] transient (the block has an open transaction somewhere and
   is skipped — per-address invariants only apply between transactions). *)

let class_char = function `S -> 'S' | `E -> 'E' | `O -> 'O' | `M -> 'M' | `T -> 'T'

(* SWMR, single-owner and the data-value invariant over every resident copy.
   [skip] masks addresses with an open host-side transaction (directory / L2
   busy), whose copies are legitimately mid-transfer. *)
let swmr_and_value ~mem_read ~skip
    (lines : (string * (Addr.t * [ `S | `E | `O | `M | `T ] * Data.t) list) list) =
  let tbl : (Addr.t, (string * [ `S | `E | `O | `M | `T ] * Data.t) list) Hashtbl.t =
    Hashtbl.create 32
  in
  List.iter
    (fun (who, ls) ->
      List.iter
        (fun (a, st, d) ->
          let prev = match Hashtbl.find_opt tbl a with Some l -> l | None -> [] in
          Hashtbl.replace tbl a ((who, st, d) :: prev))
        ls)
    lines;
  let describe entries =
    String.concat ", "
      (List.map
         (fun (who, st, (d : Data.t)) -> Printf.sprintf "%s=%c/%d" who (class_char st) d)
         entries)
  in
  Hashtbl.fold
    (fun a entries acc ->
      match acc with
      | Some _ -> acc
      | None ->
          if skip a || List.exists (fun (_, st, _) -> st = `T) entries then None
          else
            let exclusive = List.filter (fun (_, st, _) -> st = `E || st = `M) entries in
            let owners = List.filter (fun (_, st, _) -> st <> `S) entries in
            if exclusive <> [] && List.length entries > 1 then
              Some
                (Printf.sprintf "SWMR violated at block %d: %s" (Addr.to_int a)
                   (describe entries))
            else if List.length owners > 1 then
              Some
                (Printf.sprintf "multiple owners of block %d: %s" (Addr.to_int a)
                   (describe entries))
            else
              let expected =
                match owners with
                | [ (_, (`O | `M), d) ] -> Some d
                | [ (_, `E, _) ] -> None (* sole copy; nothing shares it *)
                | _ -> Some (mem_read a)
              in
              (match expected with
              | None -> None
              | Some (v : Data.t) ->
                  List.fold_left
                    (fun acc (who, st, (d : Data.t)) ->
                      match acc with
                      | Some _ -> acc
                      | None ->
                          if st = `S && d <> v then
                            Some
                              (Printf.sprintf
                                 "data-value violated at block %d: %s holds %d, coherent value is %d"
                                 (Addr.to_int a) who d v)
                          else None)
                    None entries))
    tbl None

(* Guard inclusivity: with a well-behaved accelerator (the checker's), every
   stable line it holds must be in the guard's full-state table, and a line
   writable at the accelerator must be tracked writable. *)
let guard_inclusive ~xg_core ~accel_lines =
  match xg_core with
  | Some core when Xg.Xg_core.mode core = Xg.Xg_core.Full_state ->
      let tracked = Xg.Xg_core.check_tracked core in
      List.fold_left
        (fun acc (a, st, _) ->
          match acc with
          | Some _ -> acc
          | None -> (
              match st with
              | `T -> None
              | (`S | `E | `M) as st -> (
                  match List.find_opt (fun (ta, _, _) -> Addr.equal ta a) tracked with
                  | None ->
                      Some
                        (Printf.sprintf
                           "guard inclusivity violated: accel holds block %d untracked"
                           (Addr.to_int a))
                  | Some (_, `S, _) when st <> `S ->
                      Some
                        (Printf.sprintf
                           "guard tracks block %d as S but accel holds %c" (Addr.to_int a)
                           (class_char st))
                  | Some _ -> None)))
        None accel_lines
  | _ -> None

let xg_structural ~xg_core () =
  match xg_core with Some c -> Xg.Xg_core.check_violation c | None -> None

(* Widen the 4-class cache dumps into the 5-class lattice. *)
let widen_lines (ls : (Addr.t * [ `S | `E | `M | `T ] * Data.t) list) =
  (ls :> (Addr.t * [ `S | `E | `O | `M | `T ] * Data.t) list)

let no_transient_at_drain lines =
  List.fold_left
    (fun acc (who, ls) ->
      match acc with
      | Some _ -> acc
      | None ->
          List.fold_left
            (fun acc (a, st, _) ->
              match acc with
              | Some _ -> acc
              | None ->
                  if st = `T then
                    Some
                      (Printf.sprintf
                         "drained with block %d still transient in %s" (Addr.to_int a) who)
                  else None)
            acc ls)
    None lines

let first_of checks = List.fold_left (fun acc f -> match acc with Some _ -> acc | None -> f ()) None checks

(* A processor port that reaches a remote sequencer across a fixed-latency
   link in both directions: the host-side-cache organization (Figure 2b). *)
let remote_port engine ~latency (seq : Sequencer.t) =
  {
    Access.issue =
      (fun access ~on_done ->
        Engine.schedule engine ~delay:latency (fun () ->
            Sequencer.request seq access ~on_complete:(fun value ~latency:_ ->
                Engine.schedule engine ~delay:latency (fun () -> on_done value)));
        true);
  }

(* Shared plumbing for the XG organizations: build the ordered link, the
   guard core and the accelerator hierarchy on top of it. *)
let build_xg_side (cfg : Config.t) ~engine ~rng ~registry ~perms ~os ~host_port ~attach_core
    ~attach_accel =
  let variant =
    match cfg.Config.org with
    | Config.Xg_one_level v | Config.Xg_two_level v -> v
    | Config.Accel_side | Config.Host_side -> assert false
  in
  let mode =
    match variant with
    | Config.Full_state -> Xg.Xg_core.Full_state
    | Config.Transactional -> Xg.Xg_core.Transactional
  in
  let link_ordering =
    if cfg.Config.link_ordered then
      Xguard_network.Network.Ordered { latency = cfg.Config.link_latency }
    else
      (* Ablation A1: deliberately break the paper's ordered-link requirement. *)
      Xguard_network.Network.Unordered
        { min_latency = 1; max_latency = 2 * cfg.Config.link_latency }
  in
  let link =
    Xg.Xg_iface.Link.create ~engine ~rng:(Rng.split rng) ~name:"xg.link"
      ~ordering:link_ordering ()
  in
  Xg.Xg_iface.Link.set_tracer link link_tracer;
  (* Only the guard link carries crossing traffic; the accelerator-internal
     network below never hosts span segments. *)
  if Spans.on () then Xg.Xg_iface.Link.mark_crossing link;
  let xg_link_node = Node.Registry.fresh registry "xg.link_end" in
  let accel_link_node = Node.Registry.fresh registry "accel.link_end" in
  let rate_limiter =
    match cfg.Config.rate_limit with
    | Some (tokens_per_cycle, burst) ->
        Some (Xg.Rate_limiter.create ~engine ~tokens_per_cycle ~burst ())
    | None -> None
  in
  let core =
    Xg.Xg_core.create ~engine ~name:"xg" ~mode ~link ~self:xg_link_node ~accel:accel_link_node
      ~host:host_port ~perms ~os ~timeout:cfg.Config.xg_timeout ?rate_limiter
      ~suppress_put_s_register:cfg.Config.suppress_put_s
      ~quarantine_after:cfg.Config.quarantine_after ()
  in
  attach_core core;
  if Spans.on () then begin
    Spans.add_gauge ~name:"xg.link.in_flight" (fun () -> Xg.Xg_iface.Link.in_flight link);
    Spans.add_gauge ~name:"xg.open_transactions" (fun () ->
        Xg.Xg_core.open_transactions core);
    Spans.add_gauge ~name:"xg.tracked_blocks" (fun () -> Xg.Xg_core.tracked_blocks core);
    Spans.add_gauge ~name:"xg.perm_entries" (fun () -> Xg.Perm_table.entries perms)
  end;
  if Config.reliable_link cfg then begin
    Xg.Xg_iface.Link.enable_reliability link ~retry_timeout:cfg.Config.link_retry_timeout
      ~max_retries:cfg.Config.link_max_retries ();
    (match cfg.Config.link_faults with
    | Some faults ->
        (* A standalone stream (not split from the system rng), so installing
           the fault model cannot perturb any component's randomness. *)
        Xg.Xg_iface.Link.set_faults link
          ~rng:(Rng.create ~seed:((cfg.Config.seed * 1000003) + 77))
          faults
    | None -> ());
    List.iter (Xg.Xg_iface.Link.add_fault_script link) cfg.Config.link_fault_scripts;
    Xg.Xg_iface.Link.set_fault_handler link
      ~on_fault:(fun () -> Xg.Xg_core.link_fault core)
      ~on_recover:(fun () -> Xg.Xg_core.link_recovered core);
    Xg.Xg_core.set_on_quarantine core (fun () -> Xg.Xg_iface.Link.kill link)
  end;
  let accel_ports, accel_l1s, accel_l2, accel_internal =
    if not attach_accel then ([||], [||], None, None)
    else
      match cfg.Config.org with
      | Config.Xg_one_level _ ->
          let lower = A.Lower_port.on_link link ~self:accel_link_node ~peer:xg_link_node in
          let l1 =
            A.L1_simple.create ~engine ~name:"accel.l1" ~flavor:A.L1_simple.Mesi
              ~sets:cfg.Config.accel_sets ~ways:cfg.Config.accel_ways ~lower ()
          in
          Xg.Xg_iface.Link.register link accel_link_node (fun ~src:_ msg ->
              A.L1_simple.deliver l1 msg);
          ([| A.L1_simple.cpu_port l1 |], [| l1 |], None, None)
      | Config.Xg_two_level _ ->
          let internal =
            Xg.Xg_iface.Link.create ~engine ~rng:(Rng.split rng) ~name:"accel.internal"
              ~ordering:(Xguard_network.Network.Ordered { latency = 2 })
              ()
          in
          Xg.Xg_iface.Link.set_tracer internal link_tracer;
          let l2_node = Node.Registry.fresh registry "accel.l2" in
          let lower = A.Lower_port.on_link link ~self:accel_link_node ~peer:xg_link_node in
          let l2 =
            A.L2_shared.create ~engine ~name:"accel.l2" ~internal ~node:l2_node ~lower
              ~sets:cfg.Config.accel_l2_sets ~ways:cfg.Config.accel_l2_ways ()
          in
          Xg.Xg_iface.Link.register link accel_link_node (fun ~src:_ msg ->
              A.L2_shared.deliver_from_below l2 msg);
          let l1s =
            Array.init cfg.Config.num_accel_cores (fun i ->
                let name = Printf.sprintf "accel.l1_%d" i in
                let node = Node.Registry.fresh registry name in
                let lower = A.Lower_port.on_link internal ~self:node ~peer:l2_node in
                let l1 =
                  A.L1_simple.create ~engine ~name ~flavor:A.L1_simple.Mesi
                    ~sets:cfg.Config.accel_sets ~ways:cfg.Config.accel_ways ~lower ()
                in
                Xg.Xg_iface.Link.register internal node (fun ~src:_ msg ->
                    A.L1_simple.deliver l1 msg);
                l1)
          in
          (Array.map A.L1_simple.cpu_port l1s, l1s, Some l2, Some internal)
      | Config.Accel_side | Config.Host_side -> assert false
  in
  (link, xg_link_node, accel_link_node, core, accel_ports, accel_l1s, accel_l2, accel_internal)

let build_hammer ~attach_accel (cfg : Config.t) =
  let ordering =
    Xguard_network.Network.Unordered
      { min_latency = cfg.Config.host_net_min; max_latency = cfg.Config.host_net_max }
  in
  let sys =
    Hammer_system.create ~num_cpus:cfg.Config.num_cpus ~variant:H.L1l2.Xg_ready
      ~sets:cfg.Config.cpu_sets ~ways:cfg.Config.cpu_ways ~ordering ~seed:cfg.Config.seed
      ~mem_latency:cfg.Config.mem_latency ~dir_occupancy:cfg.Config.dir_occupancy ()
  in
  let engine = Hammer_system.engine sys in
  let rng = Hammer_system.rng sys in
  let registry = Hammer_system.registry sys in
  let net = Hammer_system.net sys in
  H.Net.set_tracer net (fun msg ->
      (Addr.to_int msg.H.Msg.addr, Format.asprintf "%a" H.Msg.pp msg));
  let perms = Xg.Perm_table.create () in
  let os = Xg.Os_model.create ~policy:cfg.Config.os_policy () in
  let dir_node = H.Directory.node (Hammer_system.directory sys) in
  let finish ~accel_ports ~xg ~accel_l1s ~accel_l2 ?accel_internal () =
    Hammer_system.finalize sys;
    let xg_core, accel_link, xg_node, accel_node, xg_port =
      match xg with
      | Some (core, link, xg_node, accel_node, port) ->
          (Some core, Some link, Some xg_node, Some accel_node, Some port)
      | None -> (None, None, None, None, None)
    in
    let cpu_stats =
      Array.to_list
        (Array.map
           (fun c -> (H.L1l2.name c, H.L1l2.stats c))
           (Hammer_system.cpus sys))
    in
    let cpu_cov =
      Array.to_list
        (Array.map
           (fun c -> (H.L1l2.name c, H.L1l2.coverage c))
           (Hammer_system.cpus sys))
    in
    let accel_cov =
      Array.to_list
        (Array.map (fun l1 -> (A.L1_simple.name l1, A.L1_simple.coverage l1)) accel_l1s)
    in
    let dir = Hammer_system.directory sys in
    let memory = Hammer_system.memory sys in
    let cpus = Hammer_system.cpus sys in
    let host_lines () =
      Array.to_list
        (Array.map (fun c -> (H.L1l2.name c, H.L1l2.check_lines c)) cpus)
    in
    let accel_line_dumps () =
      Array.to_list
        (Array.map
           (fun l1 -> (A.L1_simple.name l1, widen_lines (A.L1_simple.check_lines l1)))
           accel_l1s)
    in
    let guard_owned_lines () =
      (* Two places the guard cluster hides an architectural owner copy that
         no cache line shows: the guard's trusted copy while the directory
         still records the port as owner, and the port's in-flight
         ownership-relinquishing writeback after a dirty Fwd_s (§3.2.1).
         Surface both as owned pseudo-entries so the data-value check
         compares sharers against them instead of stale memory. *)
      match (xg_core, xg_port) with
      | Some core, Some p ->
          let pid = Node.id (H.Xg_port.node p) in
          let tracked =
            List.filter_map
              (fun (a, st, copy) ->
                match (st, copy, H.Directory.owner dir a) with
                | `S, Some d, Some n when Node.id n = pid -> Some (a, `O, d)
                | _ -> None)
              (Xg.Xg_core.check_tracked core)
          in
          let in_put =
            List.map (fun (a, d) -> (a, `O, d)) (H.Xg_port.check_owner_puts p)
          in
          let entries = tracked @ in_put in
          if entries = [] then [] else [ ("xg", entries) ]
      | _ -> []
    in
    let all_lines () = host_lines () @ accel_line_dumps () @ guard_owned_lines () in
    let check_invariant () =
      first_of
        [
          (fun () ->
            swmr_and_value
              ~mem_read:(Memory_model.read memory)
              ~skip:(H.Directory.busy dir) (all_lines ()));
          xg_structural ~xg_core;
          (fun () ->
            guard_inclusive ~xg_core
              ~accel_lines:
                (List.concat_map snd
                   (Array.to_list
                      (Array.map (fun l1 -> ("", A.L1_simple.check_lines l1)) accel_l1s))));
        ]
    in
    let check_quiescent_invariant () =
      let port_id = match xg_port with Some p -> Node.id (H.Xg_port.node p) | None -> -1 in
      let full_state =
        match xg_core with
        | Some c -> Xg.Xg_core.mode c = Xg.Xg_core.Full_state
        | None -> false
      in
      let tracked =
        match xg_core with
        | Some c when full_state -> Xg.Xg_core.check_tracked c
        | _ -> []
      in
      first_of
        [
          (fun () ->
            if H.Directory.open_transactions dir <> 0 then
              Some "drained with an open directory transaction"
            else None);
          (fun () ->
            if H.Directory.check_waiting_tables dir <> 0 then
              Some "drained with queued directory work"
            else None);
          (fun () ->
            match xg_core with
            | Some c when Xg.Xg_core.check_pending_slots c <> 0 ->
                Some "drained with open guard transactions"
            | _ -> None);
          (fun () -> no_transient_at_drain (all_lines ()));
          (* forward: every owned cache line has a directory owner record *)
          (fun () ->
            Array.fold_left
              (fun acc c ->
                match acc with
                | Some _ -> acc
                | None ->
                    let nid = Node.id (H.L1l2.node c) in
                    List.fold_left
                      (fun acc (a, st, _) ->
                        match acc with
                        | Some _ -> acc
                        | None -> (
                            match st with
                            | `E | `O | `M -> (
                                match H.Directory.owner dir a with
                                | Some n when Node.id n = nid -> None
                                | _ ->
                                    Some
                                      (Printf.sprintf
                                         "directory/cache disagree: %s owns block %d unrecorded"
                                         (H.L1l2.name c) (Addr.to_int a)))
                            | `S | `T -> None))
                      acc (H.L1l2.check_lines c))
              None cpus);
          (* guard-owned blocks must be recorded against the XG port *)
          (fun () ->
            List.fold_left
              (fun acc (a, st, _) ->
                match acc with
                | Some _ -> acc
                | None -> (
                    match st with
                    | `E | `M -> (
                        match H.Directory.owner dir a with
                        | Some n when Node.id n = port_id -> None
                        | _ ->
                            Some
                              (Printf.sprintf
                                 "directory/guard disagree: guard owns block %d unrecorded"
                                 (Addr.to_int a)))
                    | `S -> None))
              None tracked);
          (* reverse: every directory owner record points at a live owner *)
          (fun () ->
            List.fold_left
              (fun acc (a, n) ->
                match acc with
                | Some _ -> acc
                | None ->
                    let nid = Node.id n in
                    let holds =
                      if nid = port_id then
                        (* the guard cluster owns through a tracked E/M line
                           or a retained trusted copy after a GetS downgrade *)
                        (not full_state)
                        || List.exists
                             (fun (ta, st, copy) ->
                               Addr.equal ta a
                               && (st = `E || st = `M
                                  || (st = `S && copy <> None)))
                             tracked
                      else
                        Array.exists
                          (fun c ->
                            Node.id (H.L1l2.node c) = nid
                            && List.exists
                                 (fun (ta, st, _) ->
                                   Addr.equal ta a && (st = `E || st = `O || st = `M))
                                 (H.L1l2.check_lines c))
                          cpus
                    in
                    if holds then None
                    else
                      Some
                        (Printf.sprintf
                           "directory records %s as owner of block %d but it holds nothing"
                           (Node.name n) (Addr.to_int a)))
              None (H.Directory.owner_entries dir));
        ]
    in
    let check_enable () =
      H.Net.enable_check_mode net ~addr_of:(fun m -> Addr.to_int m.H.Msg.addr) ();
      match (accel_link, xg_node, accel_node, xg_port) with
      | Some link, Some xg_n, Some accel_n, Some p ->
          let port_ctrl = Node.id (H.Xg_port.node p) in
          Xg.Xg_iface.Link.enable_check_mode link
            ~ctrl_of:(fun id -> if id = Node.id xg_n then port_ctrl else id)
            ();
          (match xg_core with Some c -> Xg.Xg_core.set_check_ctrl c port_ctrl | None -> ());
          Array.iter
            (fun l1 -> A.L1_simple.set_check_ctrl l1 (Node.id accel_n))
            accel_l1s;
          (match accel_internal with
          | Some il -> Xg.Xg_iface.Link.enable_check_mode il ()
          | None -> ())
      | _ -> ()
    in
    let check_set_delay_chooser f =
      H.Net.set_delay_chooser net f;
      (match accel_link with Some l -> Xg.Xg_iface.Link.set_delay_chooser l f | None -> ());
      match accel_internal with
      | Some l -> Xg.Xg_iface.Link.set_delay_chooser l f
      | None -> ()
    in
    let check_fingerprint buf =
      Array.iter (fun c -> H.L1l2.check_fingerprint c buf) cpus;
      H.Directory.check_fingerprint dir buf;
      (match xg_port with Some p -> H.Xg_port.check_fingerprint p buf | None -> ());
      (match xg_core with Some c -> Xg.Xg_core.check_fingerprint c buf | None -> ());
      Array.iter (fun l1 -> A.L1_simple.check_fingerprint l1 buf) accel_l1s;
      H.Net.check_fingerprint net buf;
      (match accel_link with Some l -> Xg.Xg_iface.Link.check_fingerprint l buf | None -> ());
      (match accel_internal with
      | Some l -> Xg.Xg_iface.Link.check_fingerprint l buf
      | None -> ());
      Xg.Perm_table.check_fingerprint perms buf;
      Xg.Os_model.check_fingerprint os buf;
      List.iter
        (fun (a, (d : Data.t)) ->
          if d <> Data.initial a then
            Buffer.add_string buf (Printf.sprintf "M%d:%d;" (Addr.to_int a) d))
        (Memory_model.touched memory);
      (* The pending-event horizon closes any window a component dump misses
         (e.g. a completion callback whose TBE is already freed).  Extra
         discrimination only ever splits states — it cannot merge two
         architecturally different ones. *)
      Array.iter
        (fun (dt, tag) -> Buffer.add_string buf (Printf.sprintf "e%d:%d;" dt tag))
        (Engine.pending_summary engine)
    in
    let check_cpu_ctrls = Array.map (fun c -> Node.id (H.L1l2.node c)) cpus in
    let check_accel_ctrls =
      match accel_node with
      | Some n -> Array.map (fun _ -> Node.id n) accel_ports
      | None -> Array.map (fun _ -> -1) accel_ports
    in
    {
      config = cfg;
      engine;
      rng;
      memory;
      perms;
      os;
      cpu_ports = Hammer_system.cpu_ports sys;
      accel_ports;
      xg_core;
      accel_link;
      xg_node_on_link = xg_node;
      accel_node_on_link = accel_node;
      accel_l1s;
      accel_l2;
      accel_internal_link = accel_internal;
      host_net_bytes = (fun () -> H.Net.bytes_sent net);
      host_net_messages = (fun () -> H.Net.messages_sent net);
      xg_port_to_host_bytes =
        (fun () ->
          match xg_port with Some p -> H.Net.bytes_from net (H.Xg_port.node p) | None -> 0);
      link_bytes =
        (fun () ->
          match accel_link with Some l -> Xg.Xg_iface.Link.bytes_sent l | None -> 0);
      set_host_monitor =
        (fun f ->
          H.Net.set_monitor net (fun ~src ~dst msg ->
              f ~src:(Node.name src) ~dst:(Node.name dst) ~addr:(Addr.to_int msg.H.Msg.addr)
                ~text:(Format.asprintf "%a" H.Msg.pp msg)));
      coverage_groups =
        (fun () ->
          cpu_cov @ accel_cov
          @ match xg_core with Some c -> [ ("xg", Xg.Xg_core.coverage c) ] | None -> []);
      coverage_sets =
        (fun () ->
          [ ("hammer.l1l2", H.L1l2.coverage_space, List.map snd cpu_cov) ]
          @ (match accel_cov with
            | [] -> []
            | _ -> [ ("accel.l1", A.L1_simple.coverage_space, List.map snd accel_cov) ])
          @ (match xg_core with
            | Some c -> [ ("xg", Xg.Xg_core.coverage_space, [ Xg.Xg_core.coverage c ]) ]
            | None -> [])
          @ fault_coverage_sets ~xg_core ~accel_link ());
      stats_groups =
        (fun () ->
          cpu_stats
          @ [ ("directory", H.Directory.stats (Hammer_system.directory sys)) ]
          @ (match xg_core with Some c -> [ ("xg", Xg.Xg_core.stats c) ] | None -> [])
          @ match xg_port with Some p -> [ ("xg_port", H.Xg_port.stats p) ] | None -> []);
      link_stats = fault_link_stats ~accel_link;
      quarantined = xg_quarantined ~xg_core;
      check_enable;
      check_set_delay_chooser;
      check_fingerprint;
      check_invariant;
      check_quiescent_invariant;
      check_cpu_ctrls;
      check_accel_ctrls;
    }
  in
  match cfg.Config.org with
  | Config.Accel_side ->
      let cache = ref None in
      let node =
        Hammer_system.add_cache_node sys "accel.cache" ~count_peers:(fun n ->
            match !cache with Some c -> H.L1l2.set_peer_count c n | None -> ())
      in
      let c =
        H.L1l2.create ~engine ~net ~name:"accel.cache" ~node ~directory:dir_node
          ~variant:H.L1l2.Xg_ready ~sets:cfg.Config.accel_sets ~ways:cfg.Config.accel_ways ()
      in
      cache := Some c;
      finish ~accel_ports:[| H.L1l2.cpu_port c |] ~xg:None ~accel_l1s:[||] ~accel_l2:None ()
  | Config.Host_side ->
      let cache = ref None in
      let node =
        Hammer_system.add_cache_node sys "hostside.cache" ~count_peers:(fun n ->
            match !cache with Some c -> H.L1l2.set_peer_count c n | None -> ())
      in
      let c =
        H.L1l2.create ~engine ~net ~name:"hostside.cache" ~node ~directory:dir_node
          ~variant:H.L1l2.Xg_ready ~sets:cfg.Config.accel_sets ~ways:cfg.Config.accel_ways ()
      in
      cache := Some c;
      let seq =
        Sequencer.create ~engine ~name:"hostside.seq" ~port:(H.L1l2.cpu_port c)
          ~max_outstanding:16 ()
      in
      let port = remote_port engine ~latency:cfg.Config.link_latency seq in
      finish ~accel_ports:[| port |] ~xg:None ~accel_l1s:[||] ~accel_l2:None ()
  | Config.Xg_one_level _ | Config.Xg_two_level _ ->
      let port = ref None in
      let node =
        Hammer_system.add_cache_node sys "xg.port" ~count_peers:(fun n ->
            match !port with Some p -> H.Xg_port.set_peer_count p n | None -> ())
      in
      let p = H.Xg_port.create ~engine ~net ~name:"xg.port" ~node ~directory:dir_node () in
      port := Some p;
      let link, xg_node, accel_node, core, accel_ports, accel_l1s, accel_l2, accel_internal =
        build_xg_side cfg ~engine ~rng ~registry ~perms ~os ~host_port:(H.Xg_port.host_port p)
          ~attach_core:(H.Xg_port.attach_core p) ~attach_accel
      in
      finish ~accel_ports ~xg:(Some (core, link, xg_node, accel_node, p)) ~accel_l1s ~accel_l2
        ?accel_internal ()

let build_mesi ~attach_accel (cfg : Config.t) =
  let ordering =
    Xguard_network.Network.Unordered
      { min_latency = cfg.Config.host_net_min; max_latency = cfg.Config.host_net_max }
  in
  let sys =
    Mesi_system.create ~num_cpus:cfg.Config.num_cpus ~variant:M.L2.Xg_ready
      ~l1_sets:cfg.Config.cpu_sets ~l1_ways:cfg.Config.cpu_ways
      ~l2_sets:cfg.Config.host_l2_sets ~l2_ways:cfg.Config.host_l2_ways ~ordering
      ~seed:cfg.Config.seed ~mem_latency:cfg.Config.mem_latency ()
  in
  let engine = Mesi_system.engine sys in
  let rng = Mesi_system.rng sys in
  let registry = Mesi_system.registry sys in
  let net = Mesi_system.net sys in
  M.Net.set_tracer net (fun msg ->
      (Addr.to_int msg.M.Msg.addr, Format.asprintf "%a" M.Msg.pp msg));
  let l2_node = M.L2.node (Mesi_system.l2 sys) in
  let perms = Xg.Perm_table.create () in
  let os = Xg.Os_model.create ~policy:cfg.Config.os_policy () in
  let finish ~accel_ports ~xg ~accel_l1s ~accel_l2 ?accel_internal () =
    let xg_core, accel_link, xg_node, accel_node, xg_port =
      match xg with
      | Some (core, link, xg_node, accel_node, port) ->
          (Some core, Some link, Some xg_node, Some accel_node, Some port)
      | None -> (None, None, None, None, None)
    in
    let cpu_stats =
      Array.to_list
        (Array.map (fun c -> (M.L1.name c, M.L1.stats c)) (Mesi_system.cpus sys))
    in
    let cpu_cov =
      Array.to_list
        (Array.map (fun c -> (M.L1.name c, M.L1.coverage c)) (Mesi_system.cpus sys))
    in
    let accel_cov =
      Array.to_list
        (Array.map (fun l1 -> (A.L1_simple.name l1, A.L1_simple.coverage l1)) accel_l1s)
    in
    let l2 = Mesi_system.l2 sys in
    let memory = Mesi_system.memory sys in
    let cpus = Mesi_system.cpus sys in
    let host_lines () =
      Array.to_list
        (Array.map (fun c -> (M.L1.name c, widen_lines (M.L1.check_lines c))) cpus)
    in
    (* The inclusive L2's own copy participates in the data-value invariant:
       when no L1 owns the block, the L2 is the sharer (clean) or the owner
       (dirty).  When an L1 owns it the L2 copy may legitimately be stale. *)
    let l2_pseudo () =
      List.filter_map
        (fun (a, h, d, dirty) ->
          match h with
          | `Owned _ -> None
          | `No_l1 | `Sharers _ -> Some (a, (if dirty then `O else `S), d))
        (M.L2.check_lines l2)
    in
    let accel_line_dumps () =
      Array.to_list
        (Array.map
           (fun l1 -> (A.L1_simple.name l1, widen_lines (A.L1_simple.check_lines l1)))
           accel_l1s)
    in
    let all_lines () =
      host_lines () @ (("host.l2", l2_pseudo ()) :: accel_line_dumps ())
    in
    let check_invariant () =
      first_of
        [
          (fun () ->
            swmr_and_value
              ~mem_read:(Memory_model.read memory)
              ~skip:(M.L2.busy l2) (all_lines ()));
          xg_structural ~xg_core;
          (fun () ->
            guard_inclusive ~xg_core
              ~accel_lines:
                (List.concat_map
                   (fun l1 -> A.L1_simple.check_lines l1)
                   (Array.to_list accel_l1s)));
        ]
    in
    let check_quiescent_invariant () =
      let port_id = match xg_port with Some p -> Node.id (M.Xg_port.node p) | None -> -1 in
      let full_state =
        match xg_core with
        | Some c -> Xg.Xg_core.mode c = Xg.Xg_core.Full_state
        | None -> false
      in
      let tracked =
        match xg_core with
        | Some c when full_state -> Xg.Xg_core.check_tracked c
        | _ -> []
      in
      let cpu_with nid = Array.to_list cpus |> List.find_opt (fun c -> Node.id (M.L1.node c) = nid) in
      let cpu_holds c a classes =
        List.exists
          (fun (ta, st, _) -> Addr.equal ta a && List.mem st classes)
          (M.L1.check_lines c)
      in
      first_of
        [
          (fun () ->
            if M.L2.open_transactions l2 <> 0 then
              Some "drained with an open L2 transaction"
            else None);
          (fun () ->
            if M.L2.check_queue_tables l2 <> 0 then
              Some "drained with queued L2 work"
            else None);
          (fun () ->
            match xg_core with
            | Some c when Xg.Xg_core.check_pending_slots c <> 0 ->
                Some "drained with open guard transactions"
            | _ -> None);
          (fun () -> no_transient_at_drain (all_lines ()));
          (* forward: every L1-owned line is recorded Owned in the L2 *)
          (fun () ->
            Array.fold_left
              (fun acc c ->
                match acc with
                | Some _ -> acc
                | None ->
                    let nid = Node.id (M.L1.node c) in
                    List.fold_left
                      (fun acc (a, st, _) ->
                        match acc with
                        | Some _ -> acc
                        | None -> (
                            match st with
                            | `E | `M -> (
                                match M.L2.probe l2 a with
                                | `Owned n when Node.id n = nid -> None
                                | _ ->
                                    Some
                                      (Printf.sprintf
                                         "L2/L1 disagree: %s owns block %d unrecorded"
                                         (M.L1.name c) (Addr.to_int a)))
                            | `S | `T -> None))
                      acc (M.L1.check_lines c))
              None cpus);
          (fun () ->
            List.fold_left
              (fun acc (a, st, _) ->
                match acc with
                | Some _ -> acc
                | None -> (
                    match st with
                    | `E | `M -> (
                        match M.L2.probe l2 a with
                        | `Owned n when Node.id n = port_id -> None
                        | _ ->
                            Some
                              (Printf.sprintf
                                 "L2/guard disagree: guard owns block %d unrecorded"
                                 (Addr.to_int a)))
                    | `S -> None))
              None tracked);
          (* reverse: every L2 record points at live holders *)
          (fun () ->
            List.fold_left
              (fun acc (a, h, _, _) ->
                match acc with
                | Some _ -> acc
                | None -> (
                    match h with
                    | `Owned n ->
                        let nid = Node.id n in
                        let holds =
                          if nid = port_id then
                            (not full_state)
                            || List.exists
                                 (fun (ta, st, _) ->
                                   Addr.equal ta a && (st = `E || st = `M))
                                 tracked
                          else
                            match cpu_with nid with
                            | Some c -> cpu_holds c a [ `E; `M ]
                            | None -> false
                        in
                        if holds then None
                        else
                          Some
                            (Printf.sprintf
                               "L2 records %s as owner of block %d but it holds nothing"
                               (Node.name n) (Addr.to_int a))
                    | `Sharers sh ->
                        List.fold_left
                          (fun acc n ->
                            match acc with
                            | Some _ -> acc
                            | None ->
                                let nid = Node.id n in
                                if nid = port_id then None
                                else (
                                  match cpu_with nid with
                                  | Some c when cpu_holds c a [ `S ] -> None
                                  | Some c ->
                                      Some
                                        (Printf.sprintf
                                           "L2 records %s sharing block %d but it holds nothing"
                                           (M.L1.name c) (Addr.to_int a))
                                  | None -> None))
                          None sh
                    | `No_l1 ->
                        Array.fold_left
                          (fun acc c ->
                            match acc with
                            | Some _ -> acc
                            | None ->
                                if cpu_holds c a [ `S; `E; `M ] then
                                  Some
                                    (Printf.sprintf
                                       "L2 records block %d L1-free but %s holds it"
                                       (Addr.to_int a) (M.L1.name c))
                                else None)
                          None cpus))
              None (M.L2.check_lines l2));
        ]
    in
    let check_enable () =
      M.Net.enable_check_mode net ~addr_of:(fun m -> Addr.to_int m.M.Msg.addr) ();
      match (accel_link, xg_node, accel_node, xg_port) with
      | Some link, Some xg_n, Some accel_n, Some p ->
          let port_ctrl = Node.id (M.Xg_port.node p) in
          Xg.Xg_iface.Link.enable_check_mode link
            ~ctrl_of:(fun id -> if id = Node.id xg_n then port_ctrl else id)
            ();
          (match xg_core with Some c -> Xg.Xg_core.set_check_ctrl c port_ctrl | None -> ());
          Array.iter
            (fun l1 -> A.L1_simple.set_check_ctrl l1 (Node.id accel_n))
            accel_l1s;
          (match accel_internal with
          | Some il -> Xg.Xg_iface.Link.enable_check_mode il ()
          | None -> ())
      | _ -> ()
    in
    let check_set_delay_chooser f =
      M.Net.set_delay_chooser net f;
      (match accel_link with Some l -> Xg.Xg_iface.Link.set_delay_chooser l f | None -> ());
      match accel_internal with
      | Some l -> Xg.Xg_iface.Link.set_delay_chooser l f
      | None -> ()
    in
    let check_fingerprint buf =
      Array.iter (fun c -> M.L1.check_fingerprint c buf) cpus;
      M.L2.check_fingerprint l2 buf;
      (match xg_port with Some p -> M.Xg_port.check_fingerprint p buf | None -> ());
      (match xg_core with Some c -> Xg.Xg_core.check_fingerprint c buf | None -> ());
      Array.iter (fun l1 -> A.L1_simple.check_fingerprint l1 buf) accel_l1s;
      M.Net.check_fingerprint net buf;
      (match accel_link with Some l -> Xg.Xg_iface.Link.check_fingerprint l buf | None -> ());
      (match accel_internal with
      | Some l -> Xg.Xg_iface.Link.check_fingerprint l buf
      | None -> ());
      Xg.Perm_table.check_fingerprint perms buf;
      Xg.Os_model.check_fingerprint os buf;
      List.iter
        (fun (a, (d : Data.t)) ->
          if d <> Data.initial a then
            Buffer.add_string buf (Printf.sprintf "M%d:%d;" (Addr.to_int a) d))
        (Memory_model.touched memory);
      Array.iter
        (fun (dt, tag) -> Buffer.add_string buf (Printf.sprintf "e%d:%d;" dt tag))
        (Engine.pending_summary engine)
    in
    let check_cpu_ctrls = Array.map (fun c -> Node.id (M.L1.node c)) cpus in
    let check_accel_ctrls =
      match accel_node with
      | Some n -> Array.map (fun _ -> Node.id n) accel_ports
      | None -> Array.map (fun _ -> -1) accel_ports
    in
    {
      config = cfg;
      engine;
      rng;
      memory;
      perms;
      os;
      cpu_ports = Mesi_system.cpu_ports sys;
      accel_ports;
      xg_core;
      accel_link;
      xg_node_on_link = xg_node;
      accel_node_on_link = accel_node;
      accel_l1s;
      accel_l2;
      accel_internal_link = accel_internal;
      host_net_bytes = (fun () -> M.Net.bytes_sent net);
      host_net_messages = (fun () -> M.Net.messages_sent net);
      xg_port_to_host_bytes =
        (fun () ->
          match xg_port with Some p -> M.Net.bytes_from net (M.Xg_port.node p) | None -> 0);
      link_bytes =
        (fun () ->
          match accel_link with Some l -> Xg.Xg_iface.Link.bytes_sent l | None -> 0);
      set_host_monitor =
        (fun f ->
          M.Net.set_monitor net (fun ~src ~dst msg ->
              f ~src:(Node.name src) ~dst:(Node.name dst) ~addr:(Addr.to_int msg.M.Msg.addr)
                ~text:(Format.asprintf "%a" M.Msg.pp msg)));
      coverage_groups =
        (fun () ->
          cpu_cov
          @ [ ("host.l2", M.L2.coverage (Mesi_system.l2 sys)) ]
          @ accel_cov
          @ match xg_core with Some c -> [ ("xg", Xg.Xg_core.coverage c) ] | None -> []);
      coverage_sets =
        (fun () ->
          [
            ("mesi.l1", M.L1.coverage_space, List.map snd cpu_cov);
            ("mesi.l2", M.L2.coverage_space, [ M.L2.coverage (Mesi_system.l2 sys) ]);
          ]
          @ (match accel_cov with
            | [] -> []
            | _ -> [ ("accel.l1", A.L1_simple.coverage_space, List.map snd accel_cov) ])
          @ (match xg_core with
            | Some c -> [ ("xg", Xg.Xg_core.coverage_space, [ Xg.Xg_core.coverage c ]) ]
            | None -> [])
          @ fault_coverage_sets ~xg_core ~accel_link ());
      stats_groups =
        (fun () ->
          cpu_stats
          @ [ ("host.l2", M.L2.stats (Mesi_system.l2 sys)) ]
          @ (match xg_core with Some c -> [ ("xg", Xg.Xg_core.stats c) ] | None -> [])
          @ match xg_port with Some p -> [ ("xg_port", M.Xg_port.stats p) ] | None -> []);
      link_stats = fault_link_stats ~accel_link;
      quarantined = xg_quarantined ~xg_core;
      check_enable;
      check_set_delay_chooser;
      check_fingerprint;
      check_invariant;
      check_quiescent_invariant;
      check_cpu_ctrls;
      check_accel_ctrls;
    }
  in
  match cfg.Config.org with
  | Config.Accel_side ->
      let node = Mesi_system.add_l1_node sys "accel.cache" in
      let c =
        M.L1.create ~engine ~net ~name:"accel.cache" ~node ~l2:l2_node
          ~sets:cfg.Config.accel_sets ~ways:cfg.Config.accel_ways ()
      in
      finish ~accel_ports:[| M.L1.cpu_port c |] ~xg:None ~accel_l1s:[||] ~accel_l2:None ()
  | Config.Host_side ->
      let node = Mesi_system.add_l1_node sys "hostside.cache" in
      let c =
        M.L1.create ~engine ~net ~name:"hostside.cache" ~node ~l2:l2_node
          ~sets:cfg.Config.accel_sets ~ways:cfg.Config.accel_ways ()
      in
      let seq =
        Sequencer.create ~engine ~name:"hostside.seq" ~port:(M.L1.cpu_port c)
          ~max_outstanding:16 ()
      in
      let port = remote_port engine ~latency:cfg.Config.link_latency seq in
      finish ~accel_ports:[| port |] ~xg:None ~accel_l1s:[||] ~accel_l2:None ()
  | Config.Xg_one_level _ | Config.Xg_two_level _ ->
      let node = Mesi_system.add_l1_node sys "xg.port" in
      let p = M.Xg_port.create ~engine ~net ~name:"xg.port" ~node ~l2:l2_node () in
      let link, xg_node, accel_node, core, accel_ports, accel_l1s, accel_l2, accel_internal =
        build_xg_side cfg ~engine ~rng ~registry ~perms ~os ~host_port:(M.Xg_port.host_port p)
          ~attach_core:(M.Xg_port.attach_core p) ~attach_accel
      in
      finish ~accel_ports ~xg:(Some (core, link, xg_node, accel_node, p)) ~accel_l1s ~accel_l2
        ?accel_internal ()

(* Snapshot interval for the span-layer time-series sampler (cycles).  Coarse
   enough to stay invisible in profiles, fine enough to show queue ramps. *)
let sampler_period = 500

let build ?(attach_accel = true) (cfg : Config.t) =
  if Spans.on () then Spans.reset_gauges ();
  let t =
    match cfg.Config.host with
    | Config.Hammer -> build_hammer ~attach_accel cfg
    | Config.Mesi -> build_mesi ~attach_accel cfg
  in
  if Spans.on () then Spans.start_sampler ~engine:t.engine ~period:sampler_period;
  t
