module Engine = Xguard_sim.Engine
module Rng = Xguard_sim.Rng
module H = Xguard_host_hammer
module M = Xguard_host_mesi
module Xg = Xguard_xg
module A = Xguard_accel
module Spans = Xguard_obs.Spans
module Metrics = Xguard_obs.Metrics
module Watchdog = Xguard_obs.Watchdog

(* One Crossing Guard instance and the accelerator hierarchy behind it.  The
   legacy single-accelerator organizations build exactly one of these (with
   [g_id = ""] so every name and label renders as before); a topology config
   builds one per accelerator spec, names suffixed by the spec id. *)
type guard = {
  g_id : string;
  g_core : Xg.Xg_core.t;
  g_link : Xg.Xg_iface.Link.t;
  g_xg_node : Node.t;
  g_accel_node : Node.t;
  g_ports : Access.port array;
  g_l1s : A.L1_simple.t array;
  g_l2 : A.L2_shared.t option;
  g_internal : Xg.Xg_iface.Link.t option;
  g_perms : Xg.Perm_table.t;
}

type t = {
  config : Config.t;
  engine : Engine.t;
  rng : Rng.t;
  memory : Memory_model.t;
  perms : Xg.Perm_table.t;
  os : Xg.Os_model.t;
  cpu_ports : Access.port array;
  accel_ports : Access.port array;
  guards : guard array;
  (* Sharded parallel simulator (lib/harness/pdes.ml): [||] for a sequential
     build; else [.(0)] is the host engine (= [engine]) and [.(g + 1)] the
     engine guard [g]'s accelerator stack schedules on. *)
  shard_engines : Engine.t array;
  xg_core : Xg.Xg_core.t option;
  accel_link : Xg.Xg_iface.Link.t option;
  xg_node_on_link : Node.t option;
  accel_node_on_link : Node.t option;
  accel_l1s : A.L1_simple.t array;
  accel_l2 : A.L2_shared.t option;
  accel_internal_link : Xg.Xg_iface.Link.t option;
  host_net_bytes : unit -> int;
  host_net_messages : unit -> int;
  xg_port_to_host_bytes : unit -> int;
  link_bytes : unit -> int;
  coverage_groups : unit -> (string * Xguard_stats.Counter.Group.t) list;
  coverage_sets :
    unit ->
    (string * Xguard_trace.Coverage.space * Xguard_stats.Counter.Group.t list) list;
  stats_groups : unit -> (string * Xguard_stats.Counter.Group.t) list;
  set_host_monitor : (src:string -> dst:string -> addr:int -> text:string -> unit) -> unit;
  link_stats : unit -> (string * int) list;
  quarantined : unit -> bool;
  check_enable : unit -> unit;
  check_set_delay_chooser : (lo:int -> hi:int -> int) -> unit;
  check_fingerprint : Buffer.t -> unit;
  check_invariant : unit -> string option;
  check_quiescent_invariant : unit -> string option;
  check_cpu_ctrls : int array;
  check_accel_ctrls : int array;
}

let coverage_reports t =
  List.map
    (fun (_, space, groups) -> Xguard_trace.Coverage.analyze space groups)
    (t.coverage_sets ())

(* Topology guards suffix every name with the spec id; the legacy guard
   ([id = ""]) keeps the historical names so single-guard systems stay
   byte-identical. *)
let sfx id base = if id = "" then base else base ^ "." ^ id
let guard_label g base = sfx g.g_id base

(* Trace adapter for the XG link message vocabulary (both the guard link and
   the accelerator-internal network speak it). *)
let link_tracer msg =
  (Addr.to_int (Xg.Xg_iface.msg_addr msg), Format.asprintf "%a" Xg.Xg_iface.pp_msg msg)

(* Fault-layer reporting, gated on injection actually being possible on each
   guard's link (wire cut, scripts, or a live probability) so fault-free runs
   render byte-for-byte like pre-fault builds.  Guards merge into the same
   two set names, so campaign merges keep working at any topology size. *)
let fault_coverage_sets ~guards () =
  match List.filter (fun g -> Xg.Xg_iface.Link.faults_active g.g_link) guards with
  | [] -> []
  | active ->
      [
        ( "xg.link",
          Xg.Xg_iface.Link.coverage_space,
          List.map (fun g -> Xg.Xg_iface.Link.coverage g.g_link) active );
        ( "xg.fault",
          Xg.Xg_core.fault_coverage_space,
          List.map (fun g -> Xg.Xg_core.fault_coverage g.g_core) active );
      ]

let fault_link_stats ~guards () =
  List.concat_map
    (fun g ->
      if Xg.Xg_iface.Link.faults_active g.g_link then
        let raw =
          Xguard_stats.Counter.Group.to_list (Xg.Xg_iface.Link.link_stats g.g_link)
          @ Xguard_network.Network.Fault.counts_to_list
              (Xg.Xg_iface.Link.fault_counts g.g_link)
        in
        if g.g_id = "" then raw else List.map (fun (k, v) -> (g.g_id ^ "." ^ k, v)) raw
      else [])
    guards

let any_quarantined ~guards () =
  List.exists (fun g -> Xg.Xg_core.quarantined g.g_core) guards

(* ---- model-checker hooks (lib/check) ----

   The invariants below speak a protocol-agnostic stability lattice: [`S]
   shared, [`E] exclusive clean, [`O] owned with possible sharers, [`M]
   modified, [`T] transient (the block has an open transaction somewhere and
   is skipped — per-address invariants only apply between transactions). *)

let class_char = function `S -> 'S' | `E -> 'E' | `O -> 'O' | `M -> 'M' | `T -> 'T'

(* SWMR, single-owner and the data-value invariant over every resident copy.
   [skip] masks addresses with an open host-side transaction (directory / L2
   busy), whose copies are legitimately mid-transfer. *)
let swmr_and_value ~mem_read ~skip
    (lines : (string * (Addr.t * [ `S | `E | `O | `M | `T ] * Data.t) list) list) =
  let tbl : (Addr.t, (string * [ `S | `E | `O | `M | `T ] * Data.t) list) Hashtbl.t =
    Hashtbl.create 32
  in
  List.iter
    (fun (who, ls) ->
      List.iter
        (fun (a, st, d) ->
          let prev = match Hashtbl.find_opt tbl a with Some l -> l | None -> [] in
          Hashtbl.replace tbl a ((who, st, d) :: prev))
        ls)
    lines;
  let describe entries =
    String.concat ", "
      (List.map
         (fun (who, st, (d : Data.t)) -> Printf.sprintf "%s=%c/%d" who (class_char st) d)
         entries)
  in
  Hashtbl.fold
    (fun a entries acc ->
      match acc with
      | Some _ -> acc
      | None ->
          if skip a || List.exists (fun (_, st, _) -> st = `T) entries then None
          else
            let exclusive = List.filter (fun (_, st, _) -> st = `E || st = `M) entries in
            let owners = List.filter (fun (_, st, _) -> st <> `S) entries in
            if exclusive <> [] && List.length entries > 1 then
              Some
                (Printf.sprintf "SWMR violated at block %d: %s" (Addr.to_int a)
                   (describe entries))
            else if List.length owners > 1 then
              Some
                (Printf.sprintf "multiple owners of block %d: %s" (Addr.to_int a)
                   (describe entries))
            else
              let expected =
                match owners with
                | [ (_, (`O | `M), d) ] -> Some d
                | [ (_, `E, _) ] -> None (* sole copy; nothing shares it *)
                | _ -> Some (mem_read a)
              in
              (match expected with
              | None -> None
              | Some (v : Data.t) ->
                  List.fold_left
                    (fun acc (who, st, (d : Data.t)) ->
                      match acc with
                      | Some _ -> acc
                      | None ->
                          if st = `S && d <> v then
                            Some
                              (Printf.sprintf
                                 "data-value violated at block %d: %s holds %d, coherent value is %d"
                                 (Addr.to_int a) who d v)
                          else None)
                    None entries))
    tbl None

(* Guard inclusivity: with a well-behaved accelerator (the checker's), every
   stable line it holds must be in the guard's full-state table, and a line
   writable at the accelerator must be tracked writable. *)
let guard_inclusive ~core ~accel_lines =
  if Xg.Xg_core.mode core = Xg.Xg_core.Full_state then
    let tracked = Xg.Xg_core.check_tracked core in
    List.fold_left
      (fun acc (a, st, _) ->
        match acc with
        | Some _ -> acc
        | None -> (
            match st with
            | `T -> None
            | (`S | `E | `M) as st -> (
                match List.find_opt (fun (ta, _, _) -> Addr.equal ta a) tracked with
                | None ->
                    Some
                      (Printf.sprintf
                         "guard inclusivity violated: accel holds block %d untracked"
                         (Addr.to_int a))
                | Some (_, `S, _) when st <> `S ->
                    Some
                      (Printf.sprintf
                         "guard tracks block %d as S but accel holds %c" (Addr.to_int a)
                         (class_char st))
                | Some _ -> None)))
      None accel_lines
  else None

(* Widen the 4-class cache dumps into the 5-class lattice. *)
let widen_lines (ls : (Addr.t * [ `S | `E | `M | `T ] * Data.t) list) =
  (ls :> (Addr.t * [ `S | `E | `O | `M | `T ] * Data.t) list)

let no_transient_at_drain lines =
  List.fold_left
    (fun acc (who, ls) ->
      match acc with
      | Some _ -> acc
      | None ->
          List.fold_left
            (fun acc (a, st, _) ->
              match acc with
              | Some _ -> acc
              | None ->
                  if st = `T then
                    Some
                      (Printf.sprintf
                         "drained with block %d still transient in %s" (Addr.to_int a) who)
                  else None)
            acc ls)
    None lines

let first_of checks = List.fold_left (fun acc f -> match acc with Some _ -> acc | None -> f ()) None checks

let first_opt f xs =
  List.fold_left (fun acc x -> match acc with Some _ -> acc | None -> f x) None xs

(* A processor port that reaches a remote sequencer across a fixed-latency
   link in both directions: the host-side-cache organization (Figure 2b). *)
let remote_port engine ~latency (seq : Sequencer.t) =
  {
    Access.issue =
      (fun access ~on_done ->
        Engine.schedule engine ~delay:latency (fun () ->
            Sequencer.request seq access ~on_complete:(fun value ~latency:_ ->
                Engine.schedule engine ~delay:latency (fun () -> on_done value)));
        true);
  }

(* Shape of the accelerator hierarchy behind one guard.  [No_accel] leaves
   the accelerator side of the link unregistered (fuzzer / fault injector
   takes its place); an uncached device is a [One_level] with a single-line
   buffer (sets = ways = 1). *)
type accel_shape =
  | No_accel
  | One_level of { sets : int; ways : int }
  | Two_level of { cores : int; l1_sets : int; l1_ways : int; l2_sets : int; l2_ways : int }

(* Build one guard: its ordered (or jittered) link, the core, and the
   accelerator hierarchy on top.  All naming goes through [sfx id] so the
   legacy guard ([id = ""]) is byte-identical to the pre-topology builder;
   [fault_seed] must differ per guard so per-link fault draws are
   independent. *)
let build_guard (cfg : Config.t) ~engine ~accel_engine ~rng ~registry ~perms ~os ~host_port
    ~attach_core ~id ~mode ~ordering ~shape ~faults ~fault_scripts ~fault_seed ~perm_gauge =
  (* The accelerator hierarchy (L1s, L2, internal link) schedules on
     [accel_engine]; everything host-side (guard core, timers, host port)
     stays on [engine].  They are the same engine except under the sharded
     parallel simulator, where each guard's stack is its own domain. *)
  let accel_engine = match accel_engine with Some e -> e | None -> engine in
  let link =
    Xg.Xg_iface.Link.create ~engine ~rng:(Rng.split rng) ~name:(sfx id "xg.link")
      ~ordering ()
  in
  Xg.Xg_iface.Link.set_tracer link link_tracer;
  (* Only the guard link carries crossing traffic; the accelerator-internal
     network below never hosts span segments. *)
  if Spans.on () then Xg.Xg_iface.Link.mark_crossing link;
  (* Per-tenant metrics series ("xg" legacy, "xg.a0" in a topology): labeling
     the guard link turns on its per-guard latency hooks, so each tenant's
     e2e / invalidate histograms are SLO-judgeable on their own. *)
  if Metrics.on () then Xg.Xg_iface.Link.set_metrics_label link (sfx id "xg");
  let xg_link_node = Node.Registry.fresh registry (sfx id "xg.link_end") in
  let accel_link_node = Node.Registry.fresh registry (sfx id "accel.link_end") in
  let rate_limiter =
    match cfg.Config.rate_limit with
    | Some (tokens_per_cycle, burst) ->
        Some (Xg.Rate_limiter.create ~engine ~tokens_per_cycle ~burst ())
    | None -> None
  in
  let core =
    Xg.Xg_core.create ~engine ~name:(sfx id "xg") ~mode ~link ~self:xg_link_node
      ~accel:accel_link_node ~host:host_port ~perms ~os ~timeout:cfg.Config.xg_timeout
      ?rate_limiter ~suppress_put_s_register:cfg.Config.suppress_put_s
      ~quarantine_after:cfg.Config.quarantine_after ?recovery:cfg.Config.recovery
      ~budgets:cfg.Config.budgets ()
  in
  attach_core core;
  if Spans.on () then begin
    let p = sfx id "xg" in
    Spans.add_gauge ~name:(p ^ ".link.in_flight") (fun () ->
        Xg.Xg_iface.Link.in_flight link);
    Spans.add_gauge ~name:(p ^ ".open_transactions") (fun () ->
        Xg.Xg_core.open_transactions core);
    Spans.add_gauge ~name:(p ^ ".tracked_blocks") (fun () -> Xg.Xg_core.tracked_blocks core);
    (* Recovery gauges only when the lifecycle is configured, so span output
       for legacy configs stays byte-identical. *)
    if cfg.Config.recovery <> None then begin
      Spans.add_gauge ~name:(p ^ ".rejoins") (fun () -> Xg.Xg_core.rejoins core);
      Spans.add_gauge ~name:(p ^ ".quarantines") (fun () -> Xg.Xg_core.quarantine_count core)
    end;
    if cfg.Config.budgets <> Xg.Xg_core.no_budgets then
      Spans.add_gauge ~name:(p ^ ".budget_trips") (fun () -> Xg.Xg_core.budget_trips core);
    if perm_gauge then
      Spans.add_gauge ~name:"xg.perm_entries" (fun () -> Xg.Perm_table.entries perms)
  end;
  if faults <> None || fault_scripts <> [] then begin
    Xg.Xg_iface.Link.enable_reliability link ~retry_timeout:cfg.Config.link_retry_timeout
      ~max_retries:cfg.Config.link_max_retries ();
    (match faults with
    | Some f ->
        (* A standalone stream (not split from the system rng), so installing
           the fault model cannot perturb any component's randomness. *)
        Xg.Xg_iface.Link.set_faults link ~rng:(Rng.create ~seed:fault_seed) f
    | None -> ());
    List.iter (Xg.Xg_iface.Link.add_fault_script link) fault_scripts;
    Xg.Xg_iface.Link.set_fault_handler link
      ~on_fault:(fun () -> Xg.Xg_core.link_fault core)
      ~on_recover:(fun () -> Xg.Xg_core.link_recovered core);
    Xg.Xg_core.set_on_quarantine core (fun () -> Xg.Xg_iface.Link.kill link)
  end;
  let accel_ports, accel_l1s, accel_l2, accel_internal =
    match shape with
    | No_accel -> ([||], [||], None, None)
    | One_level { sets; ways } ->
        let lower = A.Lower_port.on_link link ~self:accel_link_node ~peer:xg_link_node in
        let l1 =
          A.L1_simple.create ~engine:accel_engine ~name:(sfx id "accel.l1")
            ~flavor:A.L1_simple.Mesi ~sets ~ways ~lower ()
        in
        Xg.Xg_iface.Link.register link accel_link_node (fun ~src:_ msg ->
            A.L1_simple.deliver l1 msg);
        ([| A.L1_simple.cpu_port l1 |], [| l1 |], None, None)
    | Two_level { cores; l1_sets; l1_ways; l2_sets; l2_ways } ->
        let internal =
          Xg.Xg_iface.Link.create ~engine:accel_engine ~rng:(Rng.split rng)
            ~name:(sfx id "accel.internal")
            ~ordering:(Xguard_network.Network.Ordered { latency = 2 })
            ()
        in
        Xg.Xg_iface.Link.set_tracer internal link_tracer;
        let l2_node = Node.Registry.fresh registry (sfx id "accel.l2") in
        let lower = A.Lower_port.on_link link ~self:accel_link_node ~peer:xg_link_node in
        let l2 =
          A.L2_shared.create ~engine:accel_engine ~name:(sfx id "accel.l2") ~internal
            ~node:l2_node ~lower ~sets:l2_sets ~ways:l2_ways ()
        in
        Xg.Xg_iface.Link.register link accel_link_node (fun ~src:_ msg ->
            A.L2_shared.deliver_from_below l2 msg);
        let l1s =
          Array.init cores (fun i ->
              let name = sfx id (Printf.sprintf "accel.l1_%d" i) in
              let node = Node.Registry.fresh registry name in
              let lower = A.Lower_port.on_link internal ~self:node ~peer:l2_node in
              let l1 =
                A.L1_simple.create ~engine:accel_engine ~name ~flavor:A.L1_simple.Mesi
                  ~sets:l1_sets ~ways:l1_ways ~lower ()
              in
              Xg.Xg_iface.Link.register internal node (fun ~src:_ msg ->
                  A.L1_simple.deliver l1 msg);
              l1)
        in
        (Array.map A.L1_simple.cpu_port l1s, l1s, Some l2, Some internal)
  in
  (* With a recovery policy, a Reset frame landing on the accelerator side is
     the device-level hot reset: the whole cache stack drops its contents
     before the guard re-admits it (Link.kill stays wired above — the reset
     handshake un-kills the link itself). *)
  if cfg.Config.recovery <> None then
    Xg.Xg_iface.Link.set_reset_handler link (fun () ->
        Array.iter A.L1_simple.flush accel_l1s;
        Option.iter A.L2_shared.flush accel_l2);
  {
    g_id = id;
    g_core = core;
    g_link = link;
    g_xg_node = xg_link_node;
    g_accel_node = accel_link_node;
    g_ports = accel_ports;
    g_l1s = accel_l1s;
    g_l2 = accel_l2;
    g_internal = accel_internal;
    g_perms = perms;
  }

let xg_mode = function
  | Config.Full_state -> Xg.Xg_core.Full_state
  | Config.Transactional -> Xg.Xg_core.Transactional

(* The legacy single-guard parameters, exactly as the pre-topology builder
   computed them. *)
let legacy_guard (cfg : Config.t) ~engine ~accel_engine ~rng ~registry ~perms ~os
    ~host_port ~attach_core ~attach_accel =
  let variant =
    match cfg.Config.org with
    | Config.Xg_one_level v | Config.Xg_two_level v -> v
    | Config.Accel_side | Config.Host_side -> assert false
  in
  let ordering =
    if cfg.Config.link_ordered then
      Xguard_network.Network.Ordered { latency = cfg.Config.link_latency }
    else
      (* Ablation A1: deliberately break the paper's ordered-link requirement. *)
      Xguard_network.Network.Unordered
        { min_latency = 1; max_latency = 2 * cfg.Config.link_latency }
  in
  let shape =
    if not attach_accel then No_accel
    else
      match cfg.Config.org with
      | Config.Xg_one_level _ ->
          One_level { sets = cfg.Config.accel_sets; ways = cfg.Config.accel_ways }
      | Config.Xg_two_level _ ->
          Two_level
            {
              cores = cfg.Config.num_accel_cores;
              l1_sets = cfg.Config.accel_sets;
              l1_ways = cfg.Config.accel_ways;
              l2_sets = cfg.Config.accel_l2_sets;
              l2_ways = cfg.Config.accel_l2_ways;
            }
      | Config.Accel_side | Config.Host_side -> assert false
  in
  build_guard cfg ~engine ~accel_engine ~rng ~registry ~perms ~os ~host_port ~attach_core
    ~id:"" ~mode:(xg_mode variant) ~ordering ~shape ~faults:cfg.Config.link_faults
    ~fault_scripts:cfg.Config.link_fault_scripts
    ~fault_seed:((cfg.Config.seed * 1000003) + 77)
    ~perm_gauge:true

(* Per-spec guard parameters for the topology path.  A spec without its own
   fault model inherits the config-level one; config-level scripts replay on
   every link, spec scripts only on theirs.  The fault seed folds in the
   guard index so independent links draw independent fault streams. *)
let spec_ordering (spec : Topology.accel_spec) =
  if spec.Topology.link_jitter = 0 then
    Xguard_network.Network.Ordered { latency = spec.Topology.link_latency }
  else
    Xguard_network.Network.Unordered
      {
        min_latency = 1;
        max_latency = spec.Topology.link_latency + spec.Topology.link_jitter;
      }

let spec_shape (cfg : Config.t) ~attach (spec : Topology.accel_spec) =
  if not attach then No_accel
  else if spec.Topology.two_level then
    Two_level
      {
        cores = spec.Topology.cores;
        l1_sets = cfg.Config.accel_sets;
        l1_ways = cfg.Config.accel_ways;
        l2_sets = cfg.Config.accel_l2_sets;
        l2_ways = cfg.Config.accel_l2_ways;
      }
  else if spec.Topology.cached then
    One_level { sets = cfg.Config.accel_sets; ways = cfg.Config.accel_ways }
  else
    (* Uncached device: a single-line buffer stands in for its cache, so
       every new block crosses the link and nothing stays resident. *)
    One_level { sets = 1; ways = 1 }

let spec_guard (cfg : Config.t) ~engine ~accel_engine ~rng ~registry ~perms ~os ~host_port
    ~attach_core ~attach ~index (spec : Topology.accel_spec) =
  let faults =
    match spec.Topology.faults with Some f -> Some f | None -> cfg.Config.link_faults
  in
  (* Each accelerator gets its own OS permission table (guard 0 keeps the
     system-level one the legacy accessors expose).  This is load-bearing for
     isolation: quarantining a guard revokes every grant in *its* table, and
     a shared table would revoke the neighbors' pages too. *)
  let perms = if index = 0 then perms else Xg.Perm_table.create () in
  build_guard cfg ~engine ~accel_engine ~rng ~registry ~perms ~os ~host_port ~attach_core
    ~id:spec.Topology.id
    ~mode:(xg_mode spec.Topology.variant)
    ~ordering:(spec_ordering spec)
    ~shape:(spec_shape cfg ~attach spec)
    ~faults
    ~fault_scripts:(cfg.Config.link_fault_scripts @ spec.Topology.fault_scripts)
    ~fault_seed:((cfg.Config.seed * 1000003) + 77 + (131 * index))
    ~perm_gauge:(index = 0)

let build_hammer ~attach_accel ?shard (cfg : Config.t) =
  let ordering =
    Xguard_network.Network.Unordered
      { min_latency = cfg.Config.host_net_min; max_latency = cfg.Config.host_net_max }
  in
  let dir_shards =
    match cfg.Config.topology with Some topo -> topo.Topology.dir_shards | None -> 1
  in
  let sys =
    Hammer_system.create ~num_cpus:cfg.Config.num_cpus ~variant:H.L1l2.Xg_ready
      ~sets:cfg.Config.cpu_sets ~ways:cfg.Config.cpu_ways ~ordering ~seed:cfg.Config.seed
      ~mem_latency:cfg.Config.mem_latency ~dir_occupancy:cfg.Config.dir_occupancy
      ~dir_shards ()
  in
  let engine = Hammer_system.engine sys in
  let rng = Hammer_system.rng sys in
  let registry = Hammer_system.registry sys in
  let net = Hammer_system.net sys in
  H.Net.set_tracer net (fun msg ->
      (Addr.to_int msg.H.Msg.addr, Format.asprintf "%a" H.Msg.pp msg));
  let perms = Xg.Perm_table.create () in
  let os = Xg.Os_model.create ~policy:cfg.Config.os_policy () in
  let dir_route = Hammer_system.dir_router sys in
  (* [guards] pairs each guard with its host-side port; [plain_ports] carries
     the guard-less organizations' processor ports. *)
  let finish ~plain_ports ~(guards : (guard * H.Xg_port.t) list) () =
    Hammer_system.finalize sys;
    let gonly = List.map fst guards in
    let shard_engines =
      match shard with
      | None -> [||]
      | Some accel_engines ->
          let engines = Array.append [| engine |] accel_engines in
          let dom_of = Array.make (Node.Registry.count registry) 0 in
          List.iteri (fun i g -> dom_of.(Node.id g.g_accel_node) <- i + 1) gonly;
          List.iter
            (fun g -> Xg.Xg_iface.Link.set_partition g.g_link ~dom_of ~engines)
            gonly;
          engines
    in
    let g0 = match gonly with g :: _ -> Some g | [] -> None in
    let accel_ports =
      match gonly with
      | [] -> plain_ports
      | gs -> Array.concat (List.map (fun g -> g.g_ports) gs)
    in
    let accel_l1s = Array.concat (List.map (fun g -> g.g_l1s) gonly) in
    let cpu_stats =
      Array.to_list
        (Array.map
           (fun c -> (H.L1l2.name c, H.L1l2.stats c))
           (Hammer_system.cpus sys))
    in
    let cpu_cov =
      Array.to_list
        (Array.map
           (fun c -> (H.L1l2.name c, H.L1l2.coverage c))
           (Hammer_system.cpus sys))
    in
    let accel_cov =
      Array.to_list
        (Array.map (fun l1 -> (A.L1_simple.name l1, A.L1_simple.coverage l1)) accel_l1s)
    in
    let dirs = Hammer_system.directories sys in
    let dir_of a = dirs.(Addr.to_int a mod Array.length dirs) in
    let dir_busy a = H.Directory.busy (dir_of a) a in
    let memory = Hammer_system.memory sys in
    let cpus = Hammer_system.cpus sys in
    let host_lines () =
      Array.to_list
        (Array.map (fun c -> (H.L1l2.name c, H.L1l2.check_lines c)) cpus)
    in
    let accel_line_dumps () =
      Array.to_list
        (Array.map
           (fun l1 -> (A.L1_simple.name l1, widen_lines (A.L1_simple.check_lines l1)))
           accel_l1s)
    in
    let guard_owned_lines () =
      (* Two places a guard cluster hides an architectural owner copy that no
         cache line shows: the guard's trusted copy while the directory still
         records the port as owner, and the port's in-flight
         ownership-relinquishing writeback after a dirty Fwd_s (§3.2.1).
         Surface both as owned pseudo-entries so the data-value check
         compares sharers against them instead of stale memory. *)
      List.concat_map
        (fun (g, p) ->
          let pid = Node.id (H.Xg_port.node p) in
          let tracked =
            List.filter_map
              (fun (a, st, copy) ->
                match (st, copy, H.Directory.owner (dir_of a) a) with
                | `S, Some d, Some n when Node.id n = pid -> Some (a, `O, d)
                | _ -> None)
              (Xg.Xg_core.check_tracked g.g_core)
          in
          let in_put =
            List.map (fun (a, d) -> (a, `O, d)) (H.Xg_port.check_owner_puts p)
          in
          let entries = tracked @ in_put in
          if entries = [] then [] else [ (guard_label g "xg", entries) ])
        guards
    in
    let all_lines () = host_lines () @ accel_line_dumps () @ guard_owned_lines () in
    let check_invariant () =
      first_of
        [
          (fun () ->
            swmr_and_value
              ~mem_read:(Memory_model.read memory)
              ~skip:dir_busy (all_lines ()));
          (fun () -> first_opt (fun g -> Xg.Xg_core.check_violation g.g_core) gonly);
          (fun () ->
            first_opt
              (fun g ->
                guard_inclusive ~core:g.g_core
                  ~accel_lines:
                    (List.concat_map
                       (fun l1 -> A.L1_simple.check_lines l1)
                       (Array.to_list g.g_l1s)))
              gonly);
        ]
    in
    let check_quiescent_invariant () =
      let guard_of_port nid =
        List.find_opt (fun (_, p) -> Node.id (H.Xg_port.node p) = nid) guards
      in
      let full_state g = Xg.Xg_core.mode g.g_core = Xg.Xg_core.Full_state in
      let tracked g = if full_state g then Xg.Xg_core.check_tracked g.g_core else [] in
      first_of
        [
          (fun () ->
            if Array.exists (fun d -> H.Directory.open_transactions d <> 0) dirs then
              Some "drained with an open directory transaction"
            else None);
          (fun () ->
            if Array.exists (fun d -> H.Directory.check_waiting_tables d <> 0) dirs then
              Some "drained with queued directory work"
            else None);
          (fun () ->
            first_opt
              (fun g ->
                if Xg.Xg_core.check_pending_slots g.g_core <> 0 then
                  Some "drained with open guard transactions"
                else None)
              gonly);
          (fun () -> no_transient_at_drain (all_lines ()));
          (* forward: every owned cache line has a directory owner record *)
          (fun () ->
            Array.fold_left
              (fun acc c ->
                match acc with
                | Some _ -> acc
                | None ->
                    let nid = Node.id (H.L1l2.node c) in
                    List.fold_left
                      (fun acc (a, st, _) ->
                        match acc with
                        | Some _ -> acc
                        | None -> (
                            match st with
                            | `E | `O | `M -> (
                                match H.Directory.owner (dir_of a) a with
                                | Some n when Node.id n = nid -> None
                                | _ ->
                                    Some
                                      (Printf.sprintf
                                         "directory/cache disagree: %s owns block %d unrecorded"
                                         (H.L1l2.name c) (Addr.to_int a)))
                            | `S | `T -> None))
                      acc (H.L1l2.check_lines c))
              None cpus);
          (* guard-owned blocks must be recorded against that guard's port *)
          (fun () ->
            first_opt
              (fun (g, p) ->
                let pid = Node.id (H.Xg_port.node p) in
                List.fold_left
                  (fun acc (a, st, _) ->
                    match acc with
                    | Some _ -> acc
                    | None -> (
                        match st with
                        | `E | `M -> (
                            match H.Directory.owner (dir_of a) a with
                            | Some n when Node.id n = pid -> None
                            | _ ->
                                Some
                                  (Printf.sprintf
                                     "directory/guard disagree: %s owns block %d unrecorded"
                                     (guard_label g "xg") (Addr.to_int a)))
                        | `S -> None))
                  None (tracked g))
              guards);
          (* reverse: every directory owner record points at a live owner *)
          (fun () ->
            first_opt
              (fun (a, n) ->
                let nid = Node.id n in
                let holds =
                  match guard_of_port nid with
                  | Some (g, _) ->
                      (* the guard cluster owns through a tracked E/M line or
                         a retained trusted copy after a GetS downgrade *)
                      (not (full_state g))
                      || List.exists
                           (fun (ta, st, copy) ->
                             Addr.equal ta a
                             && (st = `E || st = `M || (st = `S && copy <> None)))
                           (tracked g)
                  | None ->
                      Array.exists
                        (fun c ->
                          Node.id (H.L1l2.node c) = nid
                          && List.exists
                               (fun (ta, st, _) ->
                                 Addr.equal ta a && (st = `E || st = `O || st = `M))
                               (H.L1l2.check_lines c))
                        cpus
                in
                if holds then None
                else
                  Some
                    (Printf.sprintf
                       "directory records %s as owner of block %d but it holds nothing"
                       (Node.name n) (Addr.to_int a)))
              (List.concat_map H.Directory.owner_entries (Array.to_list dirs)));
        ]
    in
    let check_enable () =
      H.Net.enable_check_mode net ~addr_of:(fun m -> Addr.to_int m.H.Msg.addr) ();
      List.iter
        (fun (g, p) ->
          let port_ctrl = Node.id (H.Xg_port.node p) in
          Xg.Xg_iface.Link.enable_check_mode g.g_link
            ~ctrl_of:(fun id -> if id = Node.id g.g_xg_node then port_ctrl else id)
            ();
          Xg.Xg_core.set_check_ctrl g.g_core port_ctrl;
          Array.iter
            (fun l1 -> A.L1_simple.set_check_ctrl l1 (Node.id g.g_accel_node))
            g.g_l1s;
          match g.g_internal with
          | Some il -> Xg.Xg_iface.Link.enable_check_mode il ()
          | None -> ())
        guards
    in
    let check_set_delay_chooser f =
      H.Net.set_delay_chooser net f;
      List.iter
        (fun g ->
          Xg.Xg_iface.Link.set_delay_chooser g.g_link f;
          match g.g_internal with
          | Some l -> Xg.Xg_iface.Link.set_delay_chooser l f
          | None -> ())
        gonly
    in
    let check_fingerprint buf =
      Array.iter (fun c -> H.L1l2.check_fingerprint c buf) cpus;
      Array.iter (fun d -> H.Directory.check_fingerprint d buf) dirs;
      List.iter
        (fun (g, p) ->
          H.Xg_port.check_fingerprint p buf;
          Xg.Xg_core.check_fingerprint g.g_core buf;
          Array.iter (fun l1 -> A.L1_simple.check_fingerprint l1 buf) g.g_l1s)
        guards;
      H.Net.check_fingerprint net buf;
      List.iter
        (fun g ->
          Xg.Xg_iface.Link.check_fingerprint g.g_link buf;
          match g.g_internal with
          | Some l -> Xg.Xg_iface.Link.check_fingerprint l buf
          | None -> ())
        gonly;
      (* Guard 0's table *is* [perms]; extra guards append theirs in topology
         order.  Guard-less organizations keep the bare system table. *)
      (match gonly with
      | [] -> Xg.Perm_table.check_fingerprint perms buf
      | gs -> List.iter (fun g -> Xg.Perm_table.check_fingerprint g.g_perms buf) gs);
      Xg.Os_model.check_fingerprint os buf;
      List.iter
        (fun (a, (d : Data.t)) ->
          if d <> Data.initial a then
            Buffer.add_string buf (Printf.sprintf "M%d:%d;" (Addr.to_int a) d))
        (Memory_model.touched memory);
      (* The pending-event horizon closes any window a component dump misses
         (e.g. a completion callback whose TBE is already freed).  Extra
         discrimination only ever splits states — it cannot merge two
         architecturally different ones. *)
      Array.iter
        (fun (dt, tag) -> Buffer.add_string buf (Printf.sprintf "e%d:%d;" dt tag))
        (Engine.pending_summary engine)
    in
    let check_cpu_ctrls = Array.map (fun c -> Node.id (H.L1l2.node c)) cpus in
    let check_accel_ctrls =
      match gonly with
      | [] -> Array.map (fun _ -> -1) plain_ports
      | gs ->
          Array.concat
            (List.map (fun g -> Array.map (fun _ -> Node.id g.g_accel_node) g.g_ports) gs)
    in
    let dir_stats =
      if Array.length dirs = 1 then [ ("directory", H.Directory.stats dirs.(0)) ]
      else
        Array.to_list
          (Array.mapi (fun i d -> (Printf.sprintf "directory%d" i, H.Directory.stats d)) dirs)
    in
    {
      config = cfg;
      engine;
      rng;
      memory;
      perms;
      os;
      cpu_ports = Hammer_system.cpu_ports sys;
      accel_ports;
      guards = Array.of_list gonly;
      shard_engines;
      xg_core = Option.map (fun g -> g.g_core) g0;
      accel_link = Option.map (fun g -> g.g_link) g0;
      xg_node_on_link = Option.map (fun g -> g.g_xg_node) g0;
      accel_node_on_link = Option.map (fun g -> g.g_accel_node) g0;
      accel_l1s;
      accel_l2 = Option.bind g0 (fun g -> g.g_l2);
      accel_internal_link = Option.bind g0 (fun g -> g.g_internal);
      host_net_bytes = (fun () -> H.Net.bytes_sent net);
      host_net_messages = (fun () -> H.Net.messages_sent net);
      xg_port_to_host_bytes =
        (fun () ->
          List.fold_left
            (fun acc (_, p) -> acc + H.Net.bytes_from net (H.Xg_port.node p))
            0 guards);
      link_bytes =
        (fun () ->
          List.fold_left (fun acc g -> acc + Xg.Xg_iface.Link.bytes_sent g.g_link) 0 gonly);
      set_host_monitor =
        (fun f ->
          H.Net.set_monitor net (fun ~src ~dst msg ->
              f ~src:(Node.name src) ~dst:(Node.name dst) ~addr:(Addr.to_int msg.H.Msg.addr)
                ~text:(Format.asprintf "%a" H.Msg.pp msg)));
      coverage_groups =
        (fun () ->
          cpu_cov @ accel_cov
          @ List.map (fun g -> (guard_label g "xg", Xg.Xg_core.coverage g.g_core)) gonly);
      coverage_sets =
        (fun () ->
          [ ("hammer.l1l2", H.L1l2.coverage_space, List.map snd cpu_cov) ]
          @ (match accel_cov with
            | [] -> []
            | _ -> [ ("accel.l1", A.L1_simple.coverage_space, List.map snd accel_cov) ])
          @ (match gonly with
            | [] -> []
            | gs ->
                [
                  ( "xg",
                    Xg.Xg_core.coverage_space,
                    List.map (fun g -> Xg.Xg_core.coverage g.g_core) gs );
                ])
          @ fault_coverage_sets ~guards:gonly ());
      stats_groups =
        (fun () ->
          cpu_stats @ dir_stats
          @ List.map (fun g -> (guard_label g "xg", Xg.Xg_core.stats g.g_core)) gonly
          @ List.map
              (fun (g, p) -> (guard_label g "xg_port", H.Xg_port.stats p))
              guards);
      link_stats = fault_link_stats ~guards:gonly;
      quarantined = any_quarantined ~guards:gonly;
      check_enable;
      check_set_delay_chooser;
      check_fingerprint;
      check_invariant;
      check_quiescent_invariant;
      check_cpu_ctrls;
      check_accel_ctrls;
    }
  in
  let make_xg_port name =
    let port = ref None in
    let node =
      Hammer_system.add_cache_node sys name ~count_peers:(fun n ->
          match !port with Some p -> H.Xg_port.set_peer_count p n | None -> ())
    in
    let p = H.Xg_port.create ~engine ~net ~name ~node ~directory:dir_route () in
    port := Some p;
    p
  in
  match cfg.Config.topology with
  | Some topo ->
      let guards =
        List.mapi
          (fun i (spec : Topology.accel_spec) ->
            let p = make_xg_port (sfx spec.Topology.id "xg.port") in
            let g =
              spec_guard cfg ~engine
                ~accel_engine:(Option.map (fun a -> a.(i)) shard)
                ~rng ~registry ~perms ~os
                ~host_port:(H.Xg_port.host_port p)
                ~attach_core:(H.Xg_port.attach_core p)
                ~attach:(attach_accel || i > 0) ~index:i spec
            in
            (g, p))
          topo.Topology.accels
      in
      finish ~plain_ports:[||] ~guards ()
  | None -> (
      match cfg.Config.org with
      | Config.Accel_side ->
          let cache = ref None in
          let node =
            Hammer_system.add_cache_node sys "accel.cache" ~count_peers:(fun n ->
                match !cache with Some c -> H.L1l2.set_peer_count c n | None -> ())
          in
          let c =
            H.L1l2.create ~engine ~net ~name:"accel.cache" ~node ~directory:dir_route
              ~variant:H.L1l2.Xg_ready ~sets:cfg.Config.accel_sets
              ~ways:cfg.Config.accel_ways ()
          in
          cache := Some c;
          finish ~plain_ports:[| H.L1l2.cpu_port c |] ~guards:[] ()
      | Config.Host_side ->
          let cache = ref None in
          let node =
            Hammer_system.add_cache_node sys "hostside.cache" ~count_peers:(fun n ->
                match !cache with Some c -> H.L1l2.set_peer_count c n | None -> ())
          in
          let c =
            H.L1l2.create ~engine ~net ~name:"hostside.cache" ~node ~directory:dir_route
              ~variant:H.L1l2.Xg_ready ~sets:cfg.Config.accel_sets
              ~ways:cfg.Config.accel_ways ()
          in
          cache := Some c;
          let seq =
            Sequencer.create ~engine ~name:"hostside.seq" ~port:(H.L1l2.cpu_port c)
              ~max_outstanding:16 ()
          in
          let port = remote_port engine ~latency:cfg.Config.link_latency seq in
          finish ~plain_ports:[| port |] ~guards:[] ()
      | Config.Xg_one_level _ | Config.Xg_two_level _ ->
          let p = make_xg_port "xg.port" in
          let g =
            legacy_guard cfg ~engine
              ~accel_engine:(Option.map (fun a -> a.(0)) shard)
              ~rng ~registry ~perms ~os
              ~host_port:(H.Xg_port.host_port p)
              ~attach_core:(H.Xg_port.attach_core p) ~attach_accel
          in
          finish ~plain_ports:[||] ~guards:[ (g, p) ] ())

let build_mesi ~attach_accel ?shard (cfg : Config.t) =
  let ordering =
    Xguard_network.Network.Unordered
      { min_latency = cfg.Config.host_net_min; max_latency = cfg.Config.host_net_max }
  in
  let sys =
    Mesi_system.create ~num_cpus:cfg.Config.num_cpus ~variant:M.L2.Xg_ready
      ~l1_sets:cfg.Config.cpu_sets ~l1_ways:cfg.Config.cpu_ways
      ~l2_sets:cfg.Config.host_l2_sets ~l2_ways:cfg.Config.host_l2_ways ~ordering
      ~seed:cfg.Config.seed ~mem_latency:cfg.Config.mem_latency ()
  in
  let engine = Mesi_system.engine sys in
  let rng = Mesi_system.rng sys in
  let registry = Mesi_system.registry sys in
  let net = Mesi_system.net sys in
  M.Net.set_tracer net (fun msg ->
      (Addr.to_int msg.M.Msg.addr, Format.asprintf "%a" M.Msg.pp msg));
  let l2_node = M.L2.node (Mesi_system.l2 sys) in
  let perms = Xg.Perm_table.create () in
  let os = Xg.Os_model.create ~policy:cfg.Config.os_policy () in
  let finish ~plain_ports ~(guards : (guard * M.Xg_port.t) list) () =
    let gonly = List.map fst guards in
    let shard_engines =
      match shard with
      | None -> [||]
      | Some accel_engines ->
          let engines = Array.append [| engine |] accel_engines in
          let dom_of = Array.make (Node.Registry.count registry) 0 in
          List.iteri (fun i g -> dom_of.(Node.id g.g_accel_node) <- i + 1) gonly;
          List.iter
            (fun g -> Xg.Xg_iface.Link.set_partition g.g_link ~dom_of ~engines)
            gonly;
          engines
    in
    let g0 = match gonly with g :: _ -> Some g | [] -> None in
    let accel_ports =
      match gonly with
      | [] -> plain_ports
      | gs -> Array.concat (List.map (fun g -> g.g_ports) gs)
    in
    let accel_l1s = Array.concat (List.map (fun g -> g.g_l1s) gonly) in
    let cpu_stats =
      Array.to_list
        (Array.map (fun c -> (M.L1.name c, M.L1.stats c)) (Mesi_system.cpus sys))
    in
    let cpu_cov =
      Array.to_list
        (Array.map (fun c -> (M.L1.name c, M.L1.coverage c)) (Mesi_system.cpus sys))
    in
    let accel_cov =
      Array.to_list
        (Array.map (fun l1 -> (A.L1_simple.name l1, A.L1_simple.coverage l1)) accel_l1s)
    in
    let l2 = Mesi_system.l2 sys in
    let memory = Mesi_system.memory sys in
    let cpus = Mesi_system.cpus sys in
    let host_lines () =
      Array.to_list
        (Array.map (fun c -> (M.L1.name c, widen_lines (M.L1.check_lines c))) cpus)
    in
    (* The inclusive L2's own copy participates in the data-value invariant:
       when no L1 owns the block, the L2 is the sharer (clean) or the owner
       (dirty).  When an L1 owns it the L2 copy may legitimately be stale. *)
    let l2_pseudo () =
      List.filter_map
        (fun (a, h, d, dirty) ->
          match h with
          | `Owned _ -> None
          | `No_l1 | `Sharers _ -> Some (a, (if dirty then `O else `S), d))
        (M.L2.check_lines l2)
    in
    let accel_line_dumps () =
      Array.to_list
        (Array.map
           (fun l1 -> (A.L1_simple.name l1, widen_lines (A.L1_simple.check_lines l1)))
           accel_l1s)
    in
    let all_lines () =
      host_lines () @ (("host.l2", l2_pseudo ()) :: accel_line_dumps ())
    in
    let check_invariant () =
      first_of
        [
          (fun () ->
            swmr_and_value
              ~mem_read:(Memory_model.read memory)
              ~skip:(M.L2.busy l2) (all_lines ()));
          (fun () -> first_opt (fun g -> Xg.Xg_core.check_violation g.g_core) gonly);
          (fun () ->
            first_opt
              (fun g ->
                guard_inclusive ~core:g.g_core
                  ~accel_lines:
                    (List.concat_map
                       (fun l1 -> A.L1_simple.check_lines l1)
                       (Array.to_list g.g_l1s)))
              gonly);
        ]
    in
    let check_quiescent_invariant () =
      let guard_of_port nid =
        List.find_opt (fun (_, p) -> Node.id (M.Xg_port.node p) = nid) guards
      in
      let full_state g = Xg.Xg_core.mode g.g_core = Xg.Xg_core.Full_state in
      let tracked g = if full_state g then Xg.Xg_core.check_tracked g.g_core else [] in
      let cpu_with nid = Array.to_list cpus |> List.find_opt (fun c -> Node.id (M.L1.node c) = nid) in
      let cpu_holds c a classes =
        List.exists
          (fun (ta, st, _) -> Addr.equal ta a && List.mem st classes)
          (M.L1.check_lines c)
      in
      first_of
        [
          (fun () ->
            if M.L2.open_transactions l2 <> 0 then
              Some "drained with an open L2 transaction"
            else None);
          (fun () ->
            if M.L2.check_queue_tables l2 <> 0 then
              Some "drained with queued L2 work"
            else None);
          (fun () ->
            first_opt
              (fun g ->
                if Xg.Xg_core.check_pending_slots g.g_core <> 0 then
                  Some "drained with open guard transactions"
                else None)
              gonly);
          (fun () -> no_transient_at_drain (all_lines ()));
          (* forward: every L1-owned line is recorded Owned in the L2 *)
          (fun () ->
            Array.fold_left
              (fun acc c ->
                match acc with
                | Some _ -> acc
                | None ->
                    let nid = Node.id (M.L1.node c) in
                    List.fold_left
                      (fun acc (a, st, _) ->
                        match acc with
                        | Some _ -> acc
                        | None -> (
                            match st with
                            | `E | `M -> (
                                match M.L2.probe l2 a with
                                | `Owned n when Node.id n = nid -> None
                                | _ ->
                                    Some
                                      (Printf.sprintf
                                         "L2/L1 disagree: %s owns block %d unrecorded"
                                         (M.L1.name c) (Addr.to_int a)))
                            | `S | `T -> None))
                      acc (M.L1.check_lines c))
              None cpus);
          (fun () ->
            first_opt
              (fun (g, p) ->
                let pid = Node.id (M.Xg_port.node p) in
                List.fold_left
                  (fun acc (a, st, _) ->
                    match acc with
                    | Some _ -> acc
                    | None -> (
                        match st with
                        | `E | `M -> (
                            match M.L2.probe l2 a with
                            | `Owned n when Node.id n = pid -> None
                            | _ ->
                                Some
                                  (Printf.sprintf
                                     "L2/guard disagree: %s owns block %d unrecorded"
                                     (guard_label g "xg") (Addr.to_int a)))
                        | `S -> None))
                  None (tracked g))
              guards);
          (* reverse: every L2 record points at live holders *)
          (fun () ->
            List.fold_left
              (fun acc (a, h, _, _) ->
                match acc with
                | Some _ -> acc
                | None -> (
                    match h with
                    | `Owned n ->
                        let nid = Node.id n in
                        let holds =
                          match guard_of_port nid with
                          | Some (g, _) ->
                              (not (full_state g))
                              || List.exists
                                   (fun (ta, st, _) ->
                                     Addr.equal ta a && (st = `E || st = `M))
                                   (tracked g)
                          | None -> (
                              match cpu_with nid with
                              | Some c -> cpu_holds c a [ `E; `M ]
                              | None -> false)
                        in
                        if holds then None
                        else
                          Some
                            (Printf.sprintf
                               "L2 records %s as owner of block %d but it holds nothing"
                               (Node.name n) (Addr.to_int a))
                    | `Sharers sh ->
                        List.fold_left
                          (fun acc n ->
                            match acc with
                            | Some _ -> acc
                            | None ->
                                let nid = Node.id n in
                                if guard_of_port nid <> None then None
                                else (
                                  match cpu_with nid with
                                  | Some c when cpu_holds c a [ `S ] -> None
                                  | Some c ->
                                      Some
                                        (Printf.sprintf
                                           "L2 records %s sharing block %d but it holds nothing"
                                           (M.L1.name c) (Addr.to_int a))
                                  | None -> None))
                          None sh
                    | `No_l1 ->
                        Array.fold_left
                          (fun acc c ->
                            match acc with
                            | Some _ -> acc
                            | None ->
                                if cpu_holds c a [ `S; `E; `M ] then
                                  Some
                                    (Printf.sprintf
                                       "L2 records block %d L1-free but %s holds it"
                                       (Addr.to_int a) (M.L1.name c))
                                else None)
                          None cpus))
              None (M.L2.check_lines l2));
        ]
    in
    let check_enable () =
      M.Net.enable_check_mode net ~addr_of:(fun m -> Addr.to_int m.M.Msg.addr) ();
      List.iter
        (fun (g, p) ->
          let port_ctrl = Node.id (M.Xg_port.node p) in
          Xg.Xg_iface.Link.enable_check_mode g.g_link
            ~ctrl_of:(fun id -> if id = Node.id g.g_xg_node then port_ctrl else id)
            ();
          Xg.Xg_core.set_check_ctrl g.g_core port_ctrl;
          Array.iter
            (fun l1 -> A.L1_simple.set_check_ctrl l1 (Node.id g.g_accel_node))
            g.g_l1s;
          match g.g_internal with
          | Some il -> Xg.Xg_iface.Link.enable_check_mode il ()
          | None -> ())
        guards
    in
    let check_set_delay_chooser f =
      M.Net.set_delay_chooser net f;
      List.iter
        (fun g ->
          Xg.Xg_iface.Link.set_delay_chooser g.g_link f;
          match g.g_internal with
          | Some l -> Xg.Xg_iface.Link.set_delay_chooser l f
          | None -> ())
        gonly
    in
    let check_fingerprint buf =
      Array.iter (fun c -> M.L1.check_fingerprint c buf) cpus;
      M.L2.check_fingerprint l2 buf;
      List.iter
        (fun (g, p) ->
          M.Xg_port.check_fingerprint p buf;
          Xg.Xg_core.check_fingerprint g.g_core buf;
          Array.iter (fun l1 -> A.L1_simple.check_fingerprint l1 buf) g.g_l1s)
        guards;
      M.Net.check_fingerprint net buf;
      List.iter
        (fun g ->
          Xg.Xg_iface.Link.check_fingerprint g.g_link buf;
          match g.g_internal with
          | Some l -> Xg.Xg_iface.Link.check_fingerprint l buf
          | None -> ())
        gonly;
      (* Guard 0's table *is* [perms]; extra guards append theirs in topology
         order.  Guard-less organizations keep the bare system table. *)
      (match gonly with
      | [] -> Xg.Perm_table.check_fingerprint perms buf
      | gs -> List.iter (fun g -> Xg.Perm_table.check_fingerprint g.g_perms buf) gs);
      Xg.Os_model.check_fingerprint os buf;
      List.iter
        (fun (a, (d : Data.t)) ->
          if d <> Data.initial a then
            Buffer.add_string buf (Printf.sprintf "M%d:%d;" (Addr.to_int a) d))
        (Memory_model.touched memory);
      Array.iter
        (fun (dt, tag) -> Buffer.add_string buf (Printf.sprintf "e%d:%d;" dt tag))
        (Engine.pending_summary engine)
    in
    let check_cpu_ctrls = Array.map (fun c -> Node.id (M.L1.node c)) cpus in
    let check_accel_ctrls =
      match gonly with
      | [] -> Array.map (fun _ -> -1) plain_ports
      | gs ->
          Array.concat
            (List.map (fun g -> Array.map (fun _ -> Node.id g.g_accel_node) g.g_ports) gs)
    in
    {
      config = cfg;
      engine;
      rng;
      memory;
      perms;
      os;
      cpu_ports = Mesi_system.cpu_ports sys;
      accel_ports;
      guards = Array.of_list gonly;
      shard_engines;
      xg_core = Option.map (fun g -> g.g_core) g0;
      accel_link = Option.map (fun g -> g.g_link) g0;
      xg_node_on_link = Option.map (fun g -> g.g_xg_node) g0;
      accel_node_on_link = Option.map (fun g -> g.g_accel_node) g0;
      accel_l1s;
      accel_l2 = Option.bind g0 (fun g -> g.g_l2);
      accel_internal_link = Option.bind g0 (fun g -> g.g_internal);
      host_net_bytes = (fun () -> M.Net.bytes_sent net);
      host_net_messages = (fun () -> M.Net.messages_sent net);
      xg_port_to_host_bytes =
        (fun () ->
          List.fold_left
            (fun acc (_, p) -> acc + M.Net.bytes_from net (M.Xg_port.node p))
            0 guards);
      link_bytes =
        (fun () ->
          List.fold_left (fun acc g -> acc + Xg.Xg_iface.Link.bytes_sent g.g_link) 0 gonly);
      set_host_monitor =
        (fun f ->
          M.Net.set_monitor net (fun ~src ~dst msg ->
              f ~src:(Node.name src) ~dst:(Node.name dst) ~addr:(Addr.to_int msg.M.Msg.addr)
                ~text:(Format.asprintf "%a" M.Msg.pp msg)));
      coverage_groups =
        (fun () ->
          cpu_cov
          @ [ ("host.l2", M.L2.coverage (Mesi_system.l2 sys)) ]
          @ accel_cov
          @ List.map (fun g -> (guard_label g "xg", Xg.Xg_core.coverage g.g_core)) gonly);
      coverage_sets =
        (fun () ->
          [
            ("mesi.l1", M.L1.coverage_space, List.map snd cpu_cov);
            ("mesi.l2", M.L2.coverage_space, [ M.L2.coverage (Mesi_system.l2 sys) ]);
          ]
          @ (match accel_cov with
            | [] -> []
            | _ -> [ ("accel.l1", A.L1_simple.coverage_space, List.map snd accel_cov) ])
          @ (match gonly with
            | [] -> []
            | gs ->
                [
                  ( "xg",
                    Xg.Xg_core.coverage_space,
                    List.map (fun g -> Xg.Xg_core.coverage g.g_core) gs );
                ])
          @ fault_coverage_sets ~guards:gonly ());
      stats_groups =
        (fun () ->
          cpu_stats
          @ [ ("host.l2", M.L2.stats (Mesi_system.l2 sys)) ]
          @ List.map (fun g -> (guard_label g "xg", Xg.Xg_core.stats g.g_core)) gonly
          @ List.map
              (fun (g, p) -> (guard_label g "xg_port", M.Xg_port.stats p))
              guards);
      link_stats = fault_link_stats ~guards:gonly;
      quarantined = any_quarantined ~guards:gonly;
      check_enable;
      check_set_delay_chooser;
      check_fingerprint;
      check_invariant;
      check_quiescent_invariant;
      check_cpu_ctrls;
      check_accel_ctrls;
    }
  in
  let make_xg_port name =
    let node = Mesi_system.add_l1_node sys name in
    M.Xg_port.create ~engine ~net ~name ~node ~l2:l2_node ()
  in
  match cfg.Config.topology with
  | Some topo ->
      let guards =
        List.mapi
          (fun i (spec : Topology.accel_spec) ->
            let p = make_xg_port (sfx spec.Topology.id "xg.port") in
            let g =
              spec_guard cfg ~engine
                ~accel_engine:(Option.map (fun a -> a.(i)) shard)
                ~rng ~registry ~perms ~os
                ~host_port:(M.Xg_port.host_port p)
                ~attach_core:(M.Xg_port.attach_core p)
                ~attach:(attach_accel || i > 0) ~index:i spec
            in
            (g, p))
          topo.Topology.accels
      in
      finish ~plain_ports:[||] ~guards ()
  | None -> (
      match cfg.Config.org with
      | Config.Accel_side ->
          let node = Mesi_system.add_l1_node sys "accel.cache" in
          let c =
            M.L1.create ~engine ~net ~name:"accel.cache" ~node ~l2:l2_node
              ~sets:cfg.Config.accel_sets ~ways:cfg.Config.accel_ways ()
          in
          finish ~plain_ports:[| M.L1.cpu_port c |] ~guards:[] ()
      | Config.Host_side ->
          let node = Mesi_system.add_l1_node sys "hostside.cache" in
          let c =
            M.L1.create ~engine ~net ~name:"hostside.cache" ~node ~l2:l2_node
              ~sets:cfg.Config.accel_sets ~ways:cfg.Config.accel_ways ()
          in
          let seq =
            Sequencer.create ~engine ~name:"hostside.seq" ~port:(M.L1.cpu_port c)
              ~max_outstanding:16 ()
          in
          let port = remote_port engine ~latency:cfg.Config.link_latency seq in
          finish ~plain_ports:[| port |] ~guards:[] ()
      | Config.Xg_one_level _ | Config.Xg_two_level _ ->
          let p = make_xg_port "xg.port" in
          let g =
            legacy_guard cfg ~engine
              ~accel_engine:(Option.map (fun a -> a.(0)) shard)
              ~rng ~registry ~perms ~os
              ~host_port:(M.Xg_port.host_port p)
              ~attach_core:(M.Xg_port.attach_core p) ~attach_accel
          in
          finish ~plain_ports:[||] ~guards:[ (g, p) ] ())

(* Snapshot interval for the span-layer time-series sampler (cycles).  Coarse
   enough to stay invisible in profiles, fine enough to show queue ramps. *)
let sampler_period = 500

(* How many guards a config will instantiate — the sharded builder allocates
   one accelerator-domain engine per guard up front. *)
let guard_count (cfg : Config.t) =
  match cfg.Config.topology with
  | Some topo -> List.length topo.Topology.accels
  | None -> (
      match cfg.Config.org with
      | Config.Xg_one_level _ | Config.Xg_two_level _ -> 1
      | Config.Accel_side | Config.Host_side -> 0)

let build ?(attach_accel = true) ?(pdes = false) (cfg : Config.t) =
  if Spans.on () then Spans.reset_gauges ();
  if Metrics.on () then Metrics.reset_sources ();
  let shard =
    if not pdes then None
    else begin
      let n = guard_count cfg in
      if n = 0 then
        invalid_arg "System.build: sharded simulation needs at least one guard";
      Some (Array.init n (fun _ -> Engine.create ()))
    end
  in
  let t =
    match cfg.Config.host with
    | Config.Hammer -> build_hammer ~attach_accel ?shard cfg
    | Config.Mesi -> build_mesi ~attach_accel ?shard cfg
  in
  (* Metrics counter sources: every stats group the run would report, plus
     each guard's link-layer group (retransmissions live there — the
     watchdog's retry-storm rule needs their deltas).  Registration order
     fixes the stream's series order. *)
  if Metrics.on () then begin
    List.iter (fun (name, g) -> Metrics.add_group ~name g) (t.stats_groups ());
    Array.iter
      (fun g ->
        Metrics.add_group ~name:(guard_label g "xg.link")
          (Xg.Xg_iface.Link.link_stats g.g_link))
      t.guards
  end;
  let t =
    if not (Metrics.on () && Metrics.watchdog_armed ()) then t
    else begin
      (* Bridge watchdog verdicts to the OS model's anomaly ledger and an
         obs.watchdog coverage matrix.  Both are pure observers: anomalies
         never feed policy, and the coverage set only exists on armed runs,
         so unarmed output is untouched. *)
      let grp = Xguard_stats.Counter.Group.create "obs.watchdog.cov" in
      let mat = Xguard_trace.Coverage.intern_matrix Watchdog.coverage_space grp in
      Metrics.set_watchdog_reporter (fun ~rule ~event ~detail:_ ->
          if event = 0 then Xg.Os_model.anomaly t.os Watchdog.rules.(rule);
          Xguard_trace.Coverage.hit mat ~state:rule ~event);
      let prev_sets = t.coverage_sets in
      {
        t with
        coverage_sets =
          (fun () ->
            prev_sets () @ [ ("obs.watchdog", Watchdog.coverage_space, [ grp ]) ]);
      }
    end
  in
  (* The sharded coordinator samples gauges at window barriers instead — a
     free-running sampler tick could not fire inside a domain window. *)
  if not pdes then begin
    if Metrics.on () then
      (* One fused tick for both layers: two independent [Engine.every]
         samplers would each see the other's next tick in [pending] and keep
         the engine alive forever.  Span sample first, then metrics — the
         same order the PDES barrier replays. *)
      Engine.every t.engine ~period:sampler_period ~phase:sampler_period
        (fun () ->
          let now = Engine.now t.engine in
          Spans.sample_now ~now;
          Metrics.sample_now ~now;
          Engine.pending t.engine > 0)
    else if Spans.on () then
      Spans.start_sampler ~engine:t.engine ~period:sampler_period
  end;
  t
