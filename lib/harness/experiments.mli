(** The reproduced tables and figures (see DESIGN.md's experiment index).

    Each experiment builds its systems, runs them and renders one or more
    plain-text tables in the layout of the paper's artifact.  The [quick]
    flag trades iteration count for speed (used by `dune runtest`-adjacent
    smoke runs); default parameters match EXPERIMENTS.md. *)

type report = { id : string; title : string; tables : Xguard_stats.Table.t list }

val t1_transition_table : unit -> report
(** Table 1: the accelerator L1 transition matrix, printed from the
    implementation's own specification. *)

val f1_guarantees : unit -> report
(** Figure 1: one directed violation per sub-guarantee, per host protocol and
    guard mode; detection and host liveness. *)

val f2_organizations : ?quick:bool -> unit -> report
(** Figure 2: all four accelerator organizations run the same kernel. *)

val e1_stress : ?quick:bool -> unit -> report
(** §4.1: random coherence stress across all 12 configurations, with
    transition-coverage counts. *)

val e2_fuzz : ?quick:bool -> unit -> report
(** §4 fuzz: random message bombardment of every XG configuration. *)

val e3_performance : ?quick:bool -> unit -> report
(** Workload runtimes for all 12 configurations, normalized per host to the
    unsafe accelerator-side cache. *)

val e4_puts_overhead : ?quick:bool -> unit -> report
(** §2.1: unnecessary PutS traffic as a fraction of XG-to-host bandwidth,
    and the suppression register. *)

val e5_storage : ?quick:bool -> unit -> report
(** §2.3: Full-State vs Transactional guard storage, measured and analytic. *)

val e6_timeout : ?quick:bool -> unit -> report
(** §2.2 G2c: host-request latency against a mute accelerator, swept over the
    guard's timeout. *)

val e7_rate_limit : ?quick:bool -> unit -> report
(** §2.5: protecting host processes from a request-flooding accelerator. *)

val e8_block_merge : unit -> report
(** §2.5: block-size translation correctness and traffic amplification. *)

(** Outcome of the topology isolation measurement behind E9b, shared with the
    safety regression suite so the asserted bound and the published numbers
    come from the same run shape. *)
type isolation_outcome = {
  iso_quarantined : bool;  (** the victim guard did reach quarantine *)
  iso_baseline_cycles : int;
      (** cycles for the stress run with the victim healthy but idle *)
  iso_faulted_cycles : int;
      (** cycles for the identical stress run after the victim's link died
          and its guard quarantined *)
  iso_neighbor_ops : int;
      (** operations completed by the neighbor guards' devices in the
          faulted run (from {!Random_tester.outcome.ops_per_port}) *)
  iso_data_errors : int;  (** data errors across both runs — must be 0 *)
  iso_deadlocked : bool;  (** either run deadlocked — must be [false] *)
  iso_slowdown : float;
      (** [iso_faulted_cycles / iso_baseline_cycles]; the isolation claim is
          that this stays within 5% of 1.0 (it may be below 1.0: a
          quarantined guard answers all snoops locally) *)
  iso_rejoins : int;
      (** completed reset handshakes on the victim guard in the faulted run —
          0 without a [recovery] policy, and at least 1 with one (the guard
          resets the cut wire and re-admits the endpoint before the
          measurement window) *)
}

val measure_isolation :
  ?ops:int -> ?seed:int -> ?recovery:Xguard_xg.Xg_core.recovery -> unit -> isolation_outcome
(** Builds the N=3 mixed cached/uncached Hammer topology twice — victim guard
    [a0] healthy-idle vs quarantined after its link goes dark mid-ownership —
    and drives the identical CPU + neighbor-device stress load over both,
    comparing wall-clock cycles.  [ops] is per driven port (default 250).
    With [recovery], the victim's guard additionally resets the link and
    re-admits the scripted endpoint, so the faulted run measures post-rejoin
    throughput (see also {!e10_recovery} for mid-measurement recovery). *)

val e9_topology : ?quick:bool -> unit -> report
(** Multi-guard topologies: symmetric size sweep (N = 1..4 guards over a
    sharded Hammer directory) and the neighbor-isolation measurement. *)

(** One point of the E10a availability sweep. *)
type recovery_point = {
  rp_availability : float;
      (** fraction of the run guard 0 was serving (1 - down / total cycles) *)
  rp_mttr : float option;
      (** mean down cycles per completed repair; [None] if nothing rejoined *)
  rp_quarantines : int;
  rp_rejoins : int;
  rp_permakilled : bool;
  rp_ops : int;
  rp_neighbor_ops : int;
  rp_data_errors : int;
  rp_deadlocked : bool;
  rp_cycles : int;
}

val measure_recovery :
  topo:Topology.t ->
  drop:float ->
  cuts:int list ->
  ops:int ->
  ticks:int ->
  seed:int ->
  unit ->
  recovery_point
(** Runs guard 0 of [topo] bare with a well-behaved scripted sharer under a
    recovery policy, faulting its link probabilistically ([drop]) and/or with
    scripted wire cuts at the given cycles ([cuts]), while the random tester
    drives the CPUs and every neighbor guard's device for [ops] each.  The
    script re-acquires invalidated blocks every 30 cycles for [ticks] ticks,
    so link traffic — and therefore fault exposure — is sustained. *)

val e10_recovery : ?quick:bool -> unit -> report
(** (PR 8) Recovery and availability: E10a availability/MTTR sweep over drop
    rates and topology sizes, E10b directed lifecycle scenarios
    (rejoin-and-transact, permanent kill, tarpit budget trip before G2c), and
    E10c re-asserting the E9b neighbor-isolation bound while the victim
    cycles through quarantine/reset/probation mid-measurement. *)

val a1_link_ordering : ?quick:bool -> unit -> report
(** Ablation: the ordered-link requirement is load-bearing. *)

val a2_snoop_filtering : ?quick:bool -> unit -> report
(** Ablation: guard-answered snoops (fast path) per mode, and side-channel
    filtering of no-permission blocks. *)

val all : ?quick:bool -> unit -> report list
val by_id : string -> (?quick:bool -> unit -> report) option
val ids : string list
