(** Assembles a runnable system for any {!Config.t}: host protocol, CPUs,
    memory, and one of the four accelerator organizations of Figure 2.

    The returned record exposes processor-side ports for workloads and
    testers, the Crossing Guard internals for the safety experiments, and
    bandwidth/statistics accessors for the measurement experiments.

    With [config.topology = Some topo] the system instead carries one
    {!guard} per accelerator spec — each with its own link, core and
    accelerator hierarchy, all attached to the same host — and the legacy
    single-guard accessors ([xg_core], [accel_link], ...) alias guard 0. *)

(** One Crossing Guard instance and the accelerator hierarchy behind it.
    [g_id] is the topology spec id (["" ] for the legacy single-accelerator
    organizations, whose component names carry no suffix); [g_ports] are the
    accelerator-side processor ports served through this guard, and [g_l1s] /
    [g_l2] / [g_internal] describe the modeled accelerator cache hierarchy
    (all empty for an unattached guard driven by the fuzzer).

    [g_perms] is this accelerator's OS permission table.  Guard 0 aliases the
    system-level {!t.perms} (so the legacy single-accelerator accessors and
    the fuzzer's pool restrictions keep working); every further guard gets a
    private table.  The split is what keeps quarantine contained: revoking a
    misbehaving accelerator's grants must not touch its neighbors'. *)
type guard = {
  g_id : string;
  g_core : Xguard_xg.Xg_core.t;
  g_link : Xguard_xg.Xg_iface.Link.t;
  g_xg_node : Node.t;
  g_accel_node : Node.t;
  g_ports : Access.port array;
  g_l1s : Xguard_accel.L1_simple.t array;
  g_l2 : Xguard_accel.L2_shared.t option;
  g_internal : Xguard_xg.Xg_iface.Link.t option;
  g_perms : Xguard_xg.Perm_table.t;
}

type t = {
  config : Config.t;
  engine : Xguard_sim.Engine.t;
  rng : Xguard_sim.Rng.t;
  memory : Memory_model.t;
  perms : Xguard_xg.Perm_table.t;
  os : Xguard_xg.Os_model.t;
  cpu_ports : Access.port array;
  accel_ports : Access.port array;
      (** concatenation of every guard's [g_ports] (or the guard-less
          organization's single port); use {!guards} to slice per guard *)
  guards : guard array;
      (** every Crossing Guard in the system, in topology order; a single
          anonymous entry for the legacy XG organizations, empty for
          [Accel_side]/[Host_side] *)
  shard_engines : Xguard_sim.Engine.t array;
      (** the sharded parallel simulator's domain engines ([Pdes]): [.(0)] is
          the host engine (= [engine]) and [.(g + 1)] the engine guard [g]'s
          accelerator stack schedules on.  [[||]] for a sequential build —
          everything then shares [engine] as before. *)
  xg_core : Xguard_xg.Xg_core.t option;
  accel_link : Xguard_xg.Xg_iface.Link.t option;
  xg_node_on_link : Node.t option;
  accel_node_on_link : Node.t option;
  accel_l1s : Xguard_accel.L1_simple.t array;  (** empty unless org uses them *)
  accel_l2 : Xguard_accel.L2_shared.t option;
  accel_internal_link : Xguard_xg.Xg_iface.Link.t option;
  host_net_bytes : unit -> int;
  host_net_messages : unit -> int;
  xg_port_to_host_bytes : unit -> int;
      (** bytes the XG ports sourced on the host network, summed over guards
          (0 without XG) *)
  link_bytes : unit -> int;
  coverage_groups : unit -> (string * Xguard_stats.Counter.Group.t) list;
  coverage_sets :
    unit ->
    (string * Xguard_trace.Coverage.space * Xguard_stats.Counter.Group.t list) list;
      (** per-controller-kind transition spaces with every live coverage group
          of that kind, ready for {!Xguard_trace.Coverage.analyze} (or
          {!coverage_reports}); merge across systems/runs by matching the
          leading name *)
  stats_groups : unit -> (string * Xguard_stats.Counter.Group.t) list;
  set_host_monitor : (src:string -> dst:string -> addr:int -> text:string -> unit) -> unit;
      (** monitoring hook over the host network, for debugging and tests *)
  link_stats : unit -> (string * int) list;
      (** reliability-layer counters plus injected-fault tallies for every XG
          link with faults armed, keys prefixed by guard id under a topology;
          [[]] when no fault could ever fire, so fault-free reports are
          unchanged *)
  quarantined : unit -> bool;
      (** whether any guard quarantined its accelerator *)
  check_enable : unit -> unit;
      (** Arm every network and link for the model checker: deliveries get
          (controller, block) choice tags, in-flight payloads are tracked for
          fingerprinting, and the guard/port/accelerator controller aliases
          are installed so events that synchronously mutate shared state fall
          in one partial-order-reduction conflict cluster.  Irreversible for
          this system; adds per-message tracking cost. *)
  check_set_delay_chooser : (lo:int -> hi:int -> int) -> unit;
      (** Route every unordered-latency RNG draw through the checker's
          choice enumerator. *)
  check_fingerprint : Buffer.t -> unit;
      (** Append a canonical dump of all architecturally-visible state —
          cache lines, open TBEs, directory/L2 records, guard tracking,
          in-flight messages, committed memory and the pending-event horizon
          — suitable for hashing into a visited-set key.  Requires
          {!check_enable} for the in-flight part. *)
  check_invariant : unit -> string option;
      (** SWMR, single-owner, data-value, guard G1b and guard-inclusivity
          over the current state; [Some msg] describes the first violation.
          Sound at every event boundary (blocks with an open transaction are
          skipped). *)
  check_quiescent_invariant : unit -> string option;
      (** Stronger checks that only hold with no events pending: no open or
          queued transactions anywhere, no transient lines, and full
          directory-(or L2-)/cache/guard ownership agreement in both
          directions. *)
  check_cpu_ctrls : int array;
      (** Per-[cpu_ports] controller ids for tagging driver-side events
          (sequencer pumps/retries) into the owning cache's conflict
          cluster. *)
  check_accel_ctrls : int array;
      (** Per-[accel_ports] controller ids ([-1] when the organization has no
          XG link, in which case driver events stay untagged). *)
}

val coverage_reports : t -> Xguard_trace.Coverage.report list
(** One report per entry of [coverage_sets], in order. *)

val sampler_period : int
(** Gauge-sampling period (cycles) of the span recorder's free-running
    sampler; the sharded simulator samples at the same multiples from its
    window barriers. *)

val build : ?attach_accel:bool -> ?pdes:bool -> Config.t -> t
(** [attach_accel:false] (XG organizations only) leaves the accelerator side
    of the XG link unregistered so a fuzzer or fault injector can take its
    place; [accel_ports] is then empty.

    [pdes:true] (default [false]) builds the system sharded for the parallel
    simulator: each guard's accelerator stack gets its own engine
    ([shard_engines]), every guard link is partitioned across domains, and
    the free-running span sampler is not started (the window coordinator
    samples at barriers instead).  Only [Pdes.run_windows] should drive such
    a system; callers must validate eligibility with {!Pdes.check_config}
    first.
    @raise Invalid_argument with [pdes:true] on a guard-less organization. *)
