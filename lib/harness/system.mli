(** Assembles a runnable system for any {!Config.t}: host protocol, CPUs,
    memory, and one of the four accelerator organizations of Figure 2.

    The returned record exposes processor-side ports for workloads and
    testers, the Crossing Guard internals for the safety experiments, and
    bandwidth/statistics accessors for the measurement experiments. *)

type t = {
  config : Config.t;
  engine : Xguard_sim.Engine.t;
  rng : Xguard_sim.Rng.t;
  memory : Memory_model.t;
  perms : Xguard_xg.Perm_table.t;
  os : Xguard_xg.Os_model.t;
  cpu_ports : Access.port array;
  accel_ports : Access.port array;
  xg_core : Xguard_xg.Xg_core.t option;
  accel_link : Xguard_xg.Xg_iface.Link.t option;
  xg_node_on_link : Node.t option;
  accel_node_on_link : Node.t option;
  accel_l1s : Xguard_accel.L1_simple.t array;  (** empty unless org uses them *)
  accel_l2 : Xguard_accel.L2_shared.t option;
  accel_internal_link : Xguard_xg.Xg_iface.Link.t option;
  host_net_bytes : unit -> int;
  host_net_messages : unit -> int;
  xg_port_to_host_bytes : unit -> int;
      (** bytes the XG port sourced on the host network (0 without XG) *)
  link_bytes : unit -> int;
  coverage_groups : unit -> (string * Xguard_stats.Counter.Group.t) list;
  coverage_sets :
    unit ->
    (string * Xguard_trace.Coverage.space * Xguard_stats.Counter.Group.t list) list;
      (** per-controller-kind transition spaces with every live coverage group
          of that kind, ready for {!Xguard_trace.Coverage.analyze} (or
          {!coverage_reports}); merge across systems/runs by matching the
          leading name *)
  stats_groups : unit -> (string * Xguard_stats.Counter.Group.t) list;
  set_host_monitor : (src:string -> dst:string -> addr:int -> text:string -> unit) -> unit;
      (** monitoring hook over the host network, for debugging and tests *)
  link_stats : unit -> (string * int) list;
      (** reliability-layer counters plus injected-fault tallies for the XG
          link; [[]] when no fault could ever fire, so fault-free reports are
          unchanged *)
  quarantined : unit -> bool;
      (** whether the guard quarantined its accelerator *)
}

val coverage_reports : t -> Xguard_trace.Coverage.report list
(** One report per entry of [coverage_sets], in order. *)

val build : ?attach_accel:bool -> Config.t -> t
(** [attach_accel:false] (XG organizations only) leaves the accelerator side
    of the XG link unregistered so a fuzzer or fault injector can take its
    place; [accel_ports] is then empty. *)
