module Fault = Xguard_network.Network.Fault

type host = Hammer | Mesi

type variant = Full_state | Transactional

type accel_spec = {
  id : string;
  variant : variant;
  cached : bool;
  two_level : bool;
  cores : int;
  link_latency : int;
  link_jitter : int;
  faults : Fault.config option;
  fault_scripts : Fault.script list;
}

type t = { host : host; dir_shards : int; accels : accel_spec list }

let default_accel id =
  {
    id;
    variant = Transactional;
    cached = true;
    two_level = false;
    cores = 2;
    link_latency = 8;
    link_jitter = 0;
    faults = None;
    fault_scripts = [];
  }

let id_ok id =
  String.length id > 0
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '-')
       id

let prob_ok p = p >= 0.0 && p <= 1.0

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.accels = [] then err "topology has no accelerators"
  else if t.dir_shards < 1 || t.dir_shards > 64 then
    err "shards=%d out of range (want 1..64)" t.dir_shards
  else
    let rec check seen = function
      | [] -> Ok t
      | (a : accel_spec) :: rest ->
          if not (id_ok a.id) then
            err "bad accelerator id %S (want [A-Za-z0-9_-]+)" a.id
          else if List.mem a.id seen then err "duplicate accelerator id %S" a.id
          else if a.link_latency < 1 then
            err "%s: lat=%d out of range (want >= 1)" a.id a.link_latency
          else if a.link_jitter < 0 then
            err "%s: jitter=%d out of range (want >= 0)" a.id a.link_jitter
          else if a.cores < 1 || a.cores > 8 then
            err "%s: cores=%d out of range (want 1..8)" a.id a.cores
          else if a.two_level && not a.cached then
            err "%s: 2lvl requires a cached device" a.id
          else
            let faults_ok =
              match a.faults with
              | None -> true
              | Some (f : Fault.config) ->
                  prob_ok f.drop && prob_ok f.duplicate && prob_ok f.corrupt
                  && prob_ok f.delay && f.max_delay >= 0
            in
            if not faults_ok then
              err "%s: fault probabilities out of [0,1]" a.id
            else check (a.id :: seen) rest
    in
    check [] t.accels

(* --- parsing ------------------------------------------------------------ *)

let with_faults (a : accel_spec) f =
  let base = match a.faults with Some c -> c | None -> Fault.zero in
  { a with faults = Some (f base) }

let parse_attr (a : accel_spec) attr =
  let int_of v = int_of_string_opt v in
  let float_of v = float_of_string_opt v in
  match String.index_opt attr '=' with
  | None -> (
      match attr with
      | "full" -> Ok { a with variant = Full_state }
      | "trans" -> Ok { a with variant = Transactional }
      | "cached" -> Ok { a with cached = true }
      | "uncached" -> Ok { a with cached = false }
      | "2lvl" -> Ok { a with two_level = true }
      | _ -> Error (Printf.sprintf "%s: unknown attribute %S" a.id attr))
  | Some i -> (
      let key = String.sub attr 0 i in
      let v = String.sub attr (i + 1) (String.length attr - i - 1) in
      let bad () =
        Error (Printf.sprintf "%s: bad value %S for %s" a.id v key)
      in
      match key with
      | "cores" -> (
          match int_of v with Some n -> Ok { a with cores = n } | None -> bad ())
      | "lat" -> (
          match int_of v with
          | Some n -> Ok { a with link_latency = n }
          | None -> bad ())
      | "jitter" -> (
          match int_of v with
          | Some n -> Ok { a with link_jitter = n }
          | None -> bad ())
      | "drop" -> (
          match float_of v with
          | Some p -> Ok (with_faults a (fun c -> { c with drop = p }))
          | None -> bad ())
      | "dup" -> (
          match float_of v with
          | Some p -> Ok (with_faults a (fun c -> { c with duplicate = p }))
          | None -> bad ())
      | "corrupt" -> (
          match float_of v with
          | Some p -> Ok (with_faults a (fun c -> { c with corrupt = p }))
          | None -> bad ())
      | "delay" -> (
          match float_of v with
          | Some p ->
              Ok
                (with_faults a (fun c ->
                     { c with delay = p; max_delay = max c.max_delay 8 }))
          | None -> bad ())
      | "fault" -> (
          match Fault.script_of_string v with
          | Ok s -> Ok { a with fault_scripts = a.fault_scripts @ [ s ] }
          | Error e -> Error (Printf.sprintf "%s: %s" a.id e))
      | _ -> Error (Printf.sprintf "%s: unknown attribute %S" a.id key))

let parse_accel seg =
  match String.index_opt seg '=' with
  | None ->
      Error
        (Printf.sprintf "accelerator spec %S needs ID=ATTR{,ATTR} form" seg)
  | Some i ->
      let id = String.sub seg 0 i in
      let attrs = String.sub seg (i + 1) (String.length seg - i - 1) in
      let attrs =
        String.split_on_char ',' attrs |> List.filter (fun s -> s <> "")
      in
      List.fold_left
        (fun acc attr ->
          match acc with Error _ as e -> e | Ok a -> parse_attr a attr)
        (Ok (default_accel id))
        attrs

let parse_host seg =
  match String.split_on_char ':' seg with
  | [ "hammer" ] -> Ok (Hammer, 1)
  | [ "mesi" ] -> Ok (Mesi, 1)
  | [ h; shards ] -> (
      let host =
        match h with
        | "hammer" -> Ok Hammer
        | "mesi" -> Ok Mesi
        | _ -> Error (Printf.sprintf "unknown host %S (want hammer|mesi)" h)
      in
      match host with
      | Error _ as e -> e
      | Ok host -> (
          match String.index_opt shards '=' with
          | Some i when String.sub shards 0 i = "shards" -> (
              let v =
                String.sub shards (i + 1) (String.length shards - i - 1)
              in
              match int_of_string_opt v with
              | Some n -> Ok (host, n)
              | None -> Error (Printf.sprintf "bad shard count %S" v))
          | _ -> Error (Printf.sprintf "bad host option %S (want shards=N)" shards)
          ))
  | _ -> Error (Printf.sprintf "bad host segment %S" seg)

let of_string s =
  let segs =
    String.split_on_char ';' s
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  match segs with
  | [] -> Error "empty topology"
  | host_seg :: accel_segs -> (
      match parse_host host_seg with
      | Error _ as e -> e
      | Ok (host, dir_shards) ->
          let accels =
            List.fold_left
              (fun acc seg ->
                match acc with
                | Error _ as e -> e
                | Ok l -> (
                    match parse_accel seg with
                    | Ok a -> Ok (a :: l)
                    | Error _ as e -> e))
              (Ok []) accel_segs
          in
          (match accels with
          | Error _ as e -> e
          | Ok rev -> validate { host; dir_shards; accels = List.rev rev }))

let to_string t =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (match t.host with Hammer -> "hammer" | Mesi -> "mesi");
  if t.dir_shards > 1 then
    Buffer.add_string buf (Printf.sprintf ":shards=%d" t.dir_shards);
  List.iter
    (fun (a : accel_spec) ->
      Buffer.add_char buf ';';
      Buffer.add_string buf a.id;
      Buffer.add_char buf '=';
      let attrs = ref [] in
      let add s = attrs := s :: !attrs in
      add (match a.variant with Full_state -> "full" | Transactional -> "trans");
      add (if a.cached then "cached" else "uncached");
      if a.two_level then begin
        add "2lvl";
        add (Printf.sprintf "cores=%d" a.cores)
      end;
      add (Printf.sprintf "lat=%d" a.link_latency);
      if a.link_jitter > 0 then add (Printf.sprintf "jitter=%d" a.link_jitter);
      (match a.faults with
      | None -> ()
      | Some (f : Fault.config) ->
          if f.drop > 0.0 then add (Printf.sprintf "drop=%g" f.drop);
          if f.duplicate > 0.0 then add (Printf.sprintf "dup=%g" f.duplicate);
          if f.corrupt > 0.0 then add (Printf.sprintf "corrupt=%g" f.corrupt);
          if f.delay > 0.0 then add (Printf.sprintf "delay=%g" f.delay));
      List.iter
        (fun s -> add ("fault=" ^ Fault.script_to_string s))
        a.fault_scripts;
      Buffer.add_string buf (String.concat "," (List.rev !attrs)))
    t.accels;
  Buffer.contents buf

let name t =
  let host = match t.host with Hammer -> "hammer" | Mesi -> "mesi" in
  let shards = if t.dir_shards > 1 then Printf.sprintf ":%d" t.dir_shards else "" in
  Printf.sprintf "%s%s/topo[%s]" host shards
    (String.concat "," (List.map (fun (a : accel_spec) -> a.id) t.accels))

let symmetric ?(host = Hammer) ?(shards = 1) ?(base_latency = 8) n =
  {
    host;
    dir_shards = shards;
    accels =
      List.init n (fun i ->
          {
            (default_accel (Printf.sprintf "a%d" i)) with
            variant = (if i mod 2 = 0 then Transactional else Full_state);
            cached = i mod 3 <> 2;
            link_latency = base_latency + (4 * (i mod 2));
          });
  }
