(* Conservative parallel discrete-event simulation over the guard topology.

   A run is partitioned into logical domains along the guard links: domain 0
   is everything host-side (CPUs, caches, directories, every guard core and
   its timers, OS, memory, the host network) and domain g+1 is guard [g]'s
   accelerator stack (L1s, L2, internal link).  The only traffic between
   domains travels on the guard links, whose Ordered latency gives the
   conservative lookahead [L]: if the earliest pending event anywhere is at
   time [m], no cross-domain message can be delivered before [m + L], so
   every domain may safely fire its events through [m + L - 1] without
   synchronizing.  The coordinator runs that window on a worker team, then
   replays the deferred observability ops and cross-domain deliveries in
   canonical (time, domain, sequence) order and opens the next window.

   Determinism: the decomposition is fixed by the topology, never by the
   worker count; windows are computed from engine clocks alone; and the
   replay order is a pure function of simulated time.  [--sim-j k] therefore
   produces byte-identical output for every [k >= 1] — the worker count only
   decides which OS thread executes a domain's window. *)

module Engine = Xguard_sim.Engine
module Rng = Xguard_sim.Rng
module Shard = Xguard_sim.Shard
module Team = Xguard_parallel.Team
module Pool = Xguard_parallel.Pool
module Spans = Xguard_obs.Spans
module Metrics = Xguard_obs.Metrics

(* ---- eligibility ------------------------------------------------------- *)

(* The sharded engine refuses configurations whose mechanisms are inherently
   engine-local or would put shared mutable state on both sides of a window:
   reliability/fault timers retransmit on the sending engine, recovery
   handshakes run timers across the link, jittered links have no fixed
   lookahead.  Everything host-side only (rate limiter aside, budgets, host
   net jitter, directory shards) lives in domain 0 and needs no restriction. *)
let check_config (cfg : Config.t) =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if not (Config.uses_xg cfg) then
    err "%s has no guard link to shard on (sharded runs need a Crossing Guard)"
      (Config.name cfg)
  else if cfg.Config.link_faults <> None || cfg.Config.link_fault_scripts <> []
  then err "link fault injection uses engine-local retransmission timers"
  else if cfg.Config.recovery <> None then
    err "recovery handshakes run timers across the link"
  else if cfg.Config.rate_limit <> None then
    err "the rate limiter's token refill is engine-local"
  else if not cfg.Config.link_ordered then
    err "lookahead needs an ordered guard link (drop ordered=false)"
  else
    match cfg.Config.topology with
    | None -> Ok ()
    | Some topo ->
        let bad =
          List.find_opt
            (fun (a : Topology.accel_spec) ->
              a.Topology.link_jitter <> 0
              || a.Topology.faults <> None
              || a.Topology.fault_scripts <> [])
            topo.Topology.accels
        in
        (match bad with
        | None -> Ok ()
        | Some a ->
            if a.Topology.link_jitter <> 0 then
              err "%s: jittered links have no fixed lookahead" a.Topology.id
            else err "%s: link fault injection is engine-local" a.Topology.id)

(* The conservative lookahead: the smallest guard-link latency.  Topology
   validation guarantees every latency >= 1, so windows always make
   progress. *)
let lookahead (cfg : Config.t) =
  match cfg.Config.topology with
  | Some topo ->
      List.fold_left
        (fun acc (a : Topology.accel_spec) -> min acc a.Topology.link_latency)
        max_int topo.Topology.accels
  | None -> cfg.Config.link_latency

(* ---- the coordinator --------------------------------------------------- *)

type t = {
  sys : System.t;
  engines : Engine.t array;
  ctxs : Shard.ctx array;
  la : int;
  mutable sampled_to : int;  (** last barrier time gauge samples covered *)
}

let create (sys : System.t) =
  let engines = sys.System.shard_engines in
  if Array.length engines = 0 then
    invalid_arg "Pdes.create: system was not built with ~pdes:true";
  let spans_on = Spans.on () in
  {
    sys;
    engines;
    ctxs =
      Array.init (Array.length engines) (fun d -> Shard.make ~dom:d ~spans_on);
    la = lookahead sys.System.config;
    sampled_to = 0;
  }

let domains t = Array.length t.engines
let engine_of t ~dom = t.engines.(dom)

(* Per-[accel_ports]-index domain, from the guard each port sits behind. *)
let accel_port_domains (sys : System.t) =
  let doms =
    Array.mapi
      (fun g (gd : System.guard) ->
        Array.make (Array.length gd.System.g_ports) (g + 1))
      sys.System.guards
  in
  Array.concat (Array.to_list doms)

let events_fired t =
  Array.fold_left (fun n e -> n + Engine.events_fired e) 0 t.engines

(* Take the periodic gauge samples the free-running sampler would have taken
   up to [bound].  Inside a window no worker may touch the recorder, so the
   coordinator samples at barriers — every period multiple in
   (sampled_to, bound], in order, exactly once, independent of the worker
   count. *)
let sample_barrier t ~bound =
  let period = System.sampler_period in
  let p = ref (((t.sampled_to / period) + 1) * period) in
  while !p <= bound do
    Spans.sample_now ~now:!p;
    (* Metrics ticks ride the same barrier schedule, after the span sample —
       the same order the two free-running samplers fire in sequentially. *)
    Metrics.sample_now ~now:!p;
    p := !p + period
  done;
  if bound > t.sampled_to then t.sampled_to <- bound

type run_result = Drained | Hit_event_limit

let run_windows ?(max_events = max_int) ~workers t =
  let n = Array.length t.engines in
  let spans = Spans.on () in
  Team.with_team ~workers @@ fun team ->
  let workers = Team.size team in
  let rec window () =
    (* The global simulation horizon: the earliest pending event anywhere. *)
    let m =
      Array.fold_left
        (fun acc e ->
          match Engine.next_at e with Some a -> min acc a | None -> acc)
        max_int t.engines
    in
    if m = max_int then Drained
    else begin
      let bound = m + t.la - 1 in
      (* Every domain fires its events through [bound].  Static round-robin
         assignment: slot [s] runs domains s, s+workers, ... — a fixed
         mapping, so nothing about the round depends on thread timing. *)
      Team.round team (fun slot ->
          let d = ref slot in
          while !d < n do
            let dom = !d in
            Shard.with_ctx t.ctxs.(dom) (fun () ->
                ignore (Engine.run ~until:bound t.engines.(dom)));
            d := !d + workers
          done);
      (* Barrier: replay observability effects in canonical order, then
         deliver cross-domain messages (all land at >= bound + 1, so the
         next window's horizon computation sees them). *)
      Shard.run_all (Shard.drain_ops t.ctxs);
      Shard.run_all (Shard.drain_posts t.ctxs);
      if spans then sample_barrier t ~bound;
      if events_fired t >= max_events then Hit_event_limit else window ()
    end
  in
  window ()

(* Cycle count of a sharded run: the furthest domain clock (wall-clock of the
   simulated machine), not the per-domain sum. *)
let cycles t = Array.fold_left (fun c e -> max c (Engine.now e)) 0 t.engines

(* ---- stress driver ----------------------------------------------------- *)

(* One random tester per domain: domain 0 exercises the CPU ports, domain
   g+1 guard [g]'s accelerator ports.  Each tester owns a disjoint block
   slice, so its per-address checker state is domain-local — but the
   coherence traffic its accesses generate still crosses the guard link into
   the host directory, which is what the test is for.  Per-domain RNG
   streams are derived from the seed with the campaign splitter, so the
   workload is a pure function of (seed, domain) — never of the worker
   count. *)
let stress_blocks_per_domain = 6

let run_stress ~workers ~seed ~ops_per_core ?(event_limit = 50_000_000)
    (cfg : Config.t) =
  let sys = System.build ~pdes:true cfg in
  let t = create sys in
  let n = domains t in
  let testers =
    Array.init n (fun d ->
        let ports =
          if d = 0 then sys.System.cpu_ports
          else sys.System.guards.(d - 1).System.g_ports
        in
        let addresses =
          Array.init stress_blocks_per_domain (fun i ->
              Addr.block ((d * stress_blocks_per_domain) + i))
        in
        let rng = Rng.create ~seed:(Pool.Seed.derive ~base:(seed * 7 + 1) ~job:d) in
        Random_tester.prepare ~engine:t.engines.(d) ~rng ~ports ~addresses
          ~ops_per_core ())
  in
  let result = run_windows ~max_events:event_limit ~workers t in
  let drained = result = Drained in
  let outcomes = Array.map (fun tr -> Random_tester.finish tr ~drained) testers in
  let merged =
    Array.fold_left Random_tester.merge outcomes.(0)
      (Array.sub outcomes 1 (n - 1))
  in
  (* [merge] is built for seed sweeps where cycle counts add; within one run
     the domains advanced concurrently, so the run's clock is the maximum. *)
  (sys, { merged with Random_tester.cycles = cycles t })
