(** Parallel stress/fuzz campaigns over configurations × seeds.

    The paper's evaluation (§4) is a sweep: the random coherence tester and
    the fuzzer, run across the 12 configurations of Figure 2 under many
    seeds.  A campaign shards that matrix into independent jobs — one
    (kind, configuration, derived seed) triple each — fans them out over an
    {!Xguard_parallel.Pool} of domains, and folds the per-job outcomes back
    into one report using the pure [merge] functions of
    {!Random_tester}, {!Fuzz_tester}, {!Xguard_stats.Table} and
    {!Xguard_trace.Coverage}.

    {b Determinism invariant}: the rendered report is byte-identical for any
    worker count.  Jobs are enumerated in a fixed order (stress before fuzz,
    configuration-major, seed-minor), each job's seed is derived from the
    campaign base seed by position ({!Xguard_parallel.Pool.Seed}), every job
    is a self-contained deterministic simulation, and merging happens in job
    order regardless of completion order.  [-j N] may only change wall-clock
    time, never output — this is asserted by [test/test_campaign.ml] and
    [tools/check_campaign.sh].

    {b Crash isolation}: a job whose harness raises is reported as a crashed
    run for its configuration; the rest of the sweep is unaffected. *)

type kind =
  | Stress  (** random coherence tester on every selected configuration *)
  | Fuzz  (** chaos accelerator on every selected XG configuration *)
  | Both

type t = {
  tables : Xguard_stats.Table.t list;
      (** one summary table per campaign kind actually run *)
  span_tables : Xguard_stats.Table.t list;
      (** per-configuration latency-attribution tables (segment x txn
          percentiles), merged in job order from each job's span summary;
          empty unless spans were requested *)
  coverage : Xguard_trace.Coverage.report list;
      (** per-controller-kind transition coverage merged over every run;
          empty unless requested *)
  trails : (string * string) list;
      (** [(header, text)] failure event trails in job order; non-empty only
          when a trace buffer was supplied and some run failed *)
  jobs : int;
  failures : int;
      (** failed jobs.  A stress run fails on data errors, deadlock or guard
          violations; a fuzz run fails only on crash or deadlock (violations
          are what the fuzzer exists to provoke, and data checks are advisory
          under its shared-rw pool — paper §2.3.2) *)
  crashes : int;  (** jobs whose harness raised (isolated by the pool) *)
  metrics : Xguard_obs.Metrics.Summary.t;
      (** whole-campaign metrics summary, blocks in job order; empty unless
          metrics were requested *)
  span_total : Xguard_obs.Spans.Summary.t;
      (** every job's span summary merged in job order — the segment x txn
          histograms behind the metrics stream's [shist] lines and quantile
          SLOs; empty unless spans or metrics were requested *)
}

val job_count : kind -> configs:Config.t list -> seeds:int -> int
(** Number of jobs [run] will execute for this selection (fuzz jobs exist
    only for configurations with a Crossing Guard). *)

val run :
  ?workers:int ->
  ?collect_coverage:bool ->
  ?stress_ops:int ->
  ?fuzz_cpu_ops:int ->
  ?base_seed:int ->
  ?spans:bool ->
  ?metrics:bool ->
  ?watchdog:Xguard_obs.Watchdog.config ->
  ?trace:Xguard_trace.Trace.t ->
  kind ->
  configs:Config.t list ->
  seeds:int ->
  unit ->
  t
(** [run kind ~configs ~seeds ()] executes [seeds] runs of every selected
    configuration.  [workers] defaults to 1 (serial); [stress_ops] is
    operations per core per stress run (default 500, matching the CLI);
    [fuzz_cpu_ops] is checked CPU operations per core per fuzz run (default
    300); [base_seed] roots the job→seed derivation (default 42).
    [collect_coverage] (default false) merges every run's transition-coverage
    groups into {!t.coverage}.  [spans] (default false) arms one span
    recorder per job ({!Xguard_obs.Spans}) and merges the summaries into
    {!t.span_tables} — still byte-identical for any [workers], since each
    worker domain arms its own recorder and summaries merge purely in job
    order.  [metrics] (default false) additionally arms one
    {!Xguard_obs.Metrics} recorder per job (with [watchdog] rules when
    given), always alongside an armed span recorder, and merges every job's
    telemetry into {!t.metrics} / {!t.span_total} under the same job-order
    discipline; the rendered report text is unchanged.  [trace] collects
    per-shard failure event trails into {!t.trails}; the ring buffer is
    shared, so tracing requires [workers = 1] (the CLI enforces this). *)

val render : t -> string
(** The full merged report: tables, coverage matrices (when collected) and a
    [PASS]/[FAIL] summary line.  Byte-identical for any [workers]. *)

val passed : t -> bool
(** No job failed. *)
