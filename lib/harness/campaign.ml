module Engine = Xguard_sim.Engine
module Rng = Xguard_sim.Rng
module Table = Xguard_stats.Table
module Coverage = Xguard_trace.Coverage
module Trace = Xguard_trace.Trace
module Pool = Xguard_parallel.Pool
module Xg = Xguard_xg
module Spans = Xguard_obs.Spans
module Metrics = Xguard_obs.Metrics
module Watchdog = Xguard_obs.Watchdog

type kind = Stress | Fuzz | Both

type t = {
  tables : Table.t list;
  span_tables : Table.t list;
  coverage : Coverage.report list;
  trails : (string * string) list;
  jobs : int;
  failures : int;
  crashes : int;
  metrics : Metrics.Summary.t;
  span_total : Spans.Summary.t;
}

type coverage_sets =
  (string * Coverage.space * Xguard_stats.Counter.Group.t list) list

(* One job = one self-contained simulator run.  The result carries everything
   the fold needs so no job ever touches shared state. *)
(* Reliability-layer counters for the XG link; [faults = []] whenever the
   link could never fault, so fault-free reports keep their historical shape. *)
type link_info = { faults : (string * int) list; l_quarantined : bool }

type job_result =
  | Stress_r of
      Random_tester.outcome * int (* guard violations *) * coverage_sets * link_info
  | Fuzz_r of Fuzz_tester.outcome * coverage_sets

let stress_configs kind configs =
  match kind with Stress | Both -> configs | Fuzz -> []

let fuzz_configs kind configs =
  match kind with
  | Fuzz | Both -> List.filter Config.uses_xg configs
  | Stress -> []

let job_count kind ~configs ~seeds =
  seeds * (List.length (stress_configs kind configs) + List.length (fuzz_configs kind configs))

let trail_tail = 60

let run_stress ~collect_coverage ~ops ?trace cfg seed =
  let cfg = Config.stress_sized { cfg with Config.seed = seed } in
  let sys = System.build cfg in
  let ports = Array.append sys.System.cpu_ports sys.System.accel_ports in
  (match trace with Some tr -> Trace.clear tr | None -> ());
  let maybe_armed f =
    match trace with None -> f () | Some tr -> Trace.with_armed tr f
  in
  let o =
    maybe_armed (fun () ->
        Random_tester.run ~engine:sys.System.engine
          ~rng:(Rng.create ~seed:(seed + 1))
          ~ports
          ~addresses:(Array.init 6 Addr.block)
          ~ops_per_core:ops ())
  in
  let violations = Xg.Os_model.error_count sys.System.os in
  let cov = if collect_coverage then sys.System.coverage_sets () else [] in
  let link =
    { faults = sys.System.link_stats (); l_quarantined = sys.System.quarantined () }
  in
  (* Availability is noted where the system is still visible — inside the job,
     while this job's recorder is armed. *)
  if Metrics.on () then begin
    let now = Engine.now sys.System.engine in
    Array.iter
      (fun (g : System.guard) ->
        let guard =
          if g.System.g_id = "" then "xg" else "xg." ^ g.System.g_id
        in
        Metrics.note_avail ~guard
          ~down:(Xg.Xg_core.down_cycles g.System.g_core ~now)
          ~now)
      sys.System.guards
  end;
  let bad = o.Random_tester.data_errors > 0 || o.Random_tester.deadlocked || violations > 0 in
  let trail =
    if not bad then None
    else
      Option.map
        (fun tr ->
          let addr = o.Random_tester.first_error_addr in
          ( Printf.sprintf "-- %s stress seed %d event trail%s --" (Config.name cfg) seed
              (match addr with
              | Some a -> Printf.sprintf " for block 0x%x" a
              | None -> ""),
            Trace.dump ?addr ~last:trail_tail tr ))
        trace
  in
  (Stress_r (o, violations, cov, link), trail)

let run_fuzz ~collect_coverage ~cpu_ops ?trace cfg seed =
  (match trace with Some tr -> Trace.clear tr | None -> ());
  let o = Fuzz_tester.run { cfg with Config.seed } ~cpu_ops ?trace () in
  let cov = if collect_coverage then o.Fuzz_tester.coverage_sets else [] in
  let tail =
    match o.Fuzz_tester.crashed with
    | Some c -> c.Fuzz_tester.trace_tail
    | None -> o.Fuzz_tester.trace_tail
  in
  let trail =
    match tail with
    | [] -> None
    | _ ->
        let d = o.Fuzz_tester.trace_dropped in
        let dropped_line =
          if d = 0 then []
          else
            [ Printf.sprintf "(%d event%s dropped — ring wrapped)" d
                (if d = 1 then "" else "s") ]
        in
        Some
          ( Printf.sprintf "-- %s fuzz seed %d event trail%s --" (Config.name cfg) seed
              (match o.Fuzz_tester.first_error_addr with
              | Some a -> Printf.sprintf " for block 0x%x" a
              | None -> ""),
            String.concat "\n" (dropped_line @ List.map Trace.format_event tail) )
  in
  (Fuzz_r (o, cov), trail)

(* Per-configuration accumulator for the summary tables. *)
type acc = {
  mutable runs : int;
  mutable ops : int;
  mutable chaos : int;
  mutable ops_expected : int;
  mutable data_errors : int;
  mutable deadlocks : int;
  mutable violations : int;
  mutable crashes : int;
  mutable failed_runs : int;
  mutable link_faults : (string * int) list;
  mutable quarantines : int;
  mutable span : Spans.Summary.t;
}

let fresh_acc () =
  {
    runs = 0;
    ops = 0;
    chaos = 0;
    ops_expected = 0;
    data_errors = 0;
    deadlocks = 0;
    violations = 0;
    crashes = 0;
    failed_runs = 0;
    link_faults = [];
    quarantines = 0;
    span = Spans.Summary.empty;
  }

(* Sum two counter assoc lists, keeping [a]'s label order then [b]-only
   labels, so merged tables are stable for any worker count. *)
let merge_counts a b =
  List.map (fun (k, n) -> (k, n + Option.value ~default:0 (List.assoc_opt k b))) a
  @ List.filter (fun (k, _) -> not (List.mem_assoc k a)) b

let note_link acc ~faults ~quarantined =
  if faults <> [] then acc.link_faults <- merge_counts acc.link_faults faults;
  if quarantined then acc.quarantines <- acc.quarantines + 1

let injected_total counts =
  List.fold_left
    (fun n (k, v) ->
      if String.length k > 9 && String.sub k 0 9 = "injected." then n + v else n)
    0 counts

let count_of counts label = Option.value ~default:0 (List.assoc_opt label counts)

let run ?(workers = 1) ?(collect_coverage = false) ?(stress_ops = 500)
    ?(fuzz_cpu_ops = 300) ?(base_seed = 42) ?(spans = false) ?(metrics = false)
    ?watchdog ?trace kind ~configs ~seeds () =
  if seeds < 0 then invalid_arg "Campaign.run: negative seed count";
  let s_configs = Array.of_list (stress_configs kind configs) in
  let f_configs = Array.of_list (fuzz_configs kind configs) in
  let n_stress = Array.length s_configs * seeds in
  let n_fuzz = Array.length f_configs * seeds in
  let jobs = n_stress + n_fuzz in
  let job_seeds = Pool.Seed.derive_all ~base:base_seed ~count:jobs in
  let job i =
    let seed = job_seeds.(i) in
    let label =
      if i < n_stress then
        Printf.sprintf "stress/%s/seed%d" (Config.name s_configs.(i / seeds)) seed
      else
        Printf.sprintf "fuzz/%s/seed%d"
          (Config.name f_configs.((i - n_stress) / seeds))
          seed
    in
    let body () =
      if i < n_stress then
        run_stress ~collect_coverage ~ops:stress_ops ?trace s_configs.(i / seeds) seed
      else
        run_fuzz ~collect_coverage ~cpu_ops:fuzz_cpu_ops ?trace
          f_configs.((i - n_stress) / seeds)
          seed
    in
    if spans || metrics then begin
      (* One recorder per job, armed on this worker's domain only; the
         summary travels back as plain data and merges purely in job order.
         Metrics always ride an armed span recorder: per-tick quantiles read
         it, even when the span tables themselves were not requested. *)
      let sr = Spans.create () in
      if metrics then begin
        let mr = Metrics.create ?watchdog () in
        let res, trail =
          Spans.with_armed sr (fun () -> Metrics.with_armed mr body)
        in
        (res, trail, Spans.summary sr, Metrics.summary ~label mr)
      end
      else
        let res, trail = Spans.with_armed sr body in
        (res, trail, Spans.summary sr, Metrics.Summary.empty)
    end
    else
      let res, trail = body () in
      (res, trail, Spans.Summary.empty, Metrics.Summary.empty)
  in
  let results = Pool.map ~workers ~jobs job in
  (* Fold per configuration, in job order: byte-identical for any [workers]. *)
  let cov_order : string list ref = ref [] in
  let cov_tbl :
      (string, Coverage.space * Xguard_stats.Counter.Group.t list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let note_coverage sets =
    List.iter
      (fun (name, space, groups) ->
        match Hashtbl.find_opt cov_tbl name with
        | Some (_, acc) -> acc := !acc @ groups
        | None ->
            cov_order := name :: !cov_order;
            Hashtbl.add cov_tbl name (space, ref groups))
      sets
  in
  let trails = ref [] in
  (* Whole-campaign totals, merged strictly in job order (the fold below
     visits stress block then fuzz block, configuration-major, seed-minor —
     exactly the job enumeration), so any [workers] yields the same value. *)
  let metrics_total = ref Metrics.Summary.empty in
  let span_total = ref Spans.Summary.empty in
  let fold_block configs offset fail_of =
    Array.mapi
      (fun c cfg ->
        let acc = fresh_acc () in
        for s = 0 to seeds - 1 do
          acc.runs <- acc.runs + 1;
          match results.(offset + (c * seeds) + s) with
          | Pool.Failed _ ->
              acc.crashes <- acc.crashes + 1;
              acc.failed_runs <- acc.failed_runs + 1
          | Pool.Done (r, trail, span_sum, metrics_sum) ->
              acc.span <- Spans.Summary.merge acc.span span_sum;
              span_total := Spans.Summary.merge !span_total span_sum;
              metrics_total := Metrics.Summary.merge !metrics_total metrics_sum;
              (match trail with Some tr -> trails := tr :: !trails | None -> ());
              let failed = fail_of acc r in
              if failed then acc.failed_runs <- acc.failed_runs + 1
        done;
        (cfg, acc))
      configs
  in
  let stress_rows =
    fold_block s_configs 0 (fun acc r ->
        match r with
        | Stress_r (o, viol, cov, link) ->
            acc.ops <- acc.ops + o.Random_tester.ops_completed;
            acc.data_errors <- acc.data_errors + o.Random_tester.data_errors;
            if o.Random_tester.deadlocked then acc.deadlocks <- acc.deadlocks + 1;
            acc.violations <- acc.violations + viol;
            note_link acc ~faults:link.faults ~quarantined:link.l_quarantined;
            note_coverage cov;
            o.Random_tester.data_errors > 0 || o.Random_tester.deadlocked || viol > 0
        | Fuzz_r _ -> assert false)
  in
  let fuzz_rows =
    fold_block f_configs n_stress (fun acc r ->
        match r with
        | Fuzz_r (o, cov) ->
            acc.chaos <- acc.chaos + o.Fuzz_tester.chaos_messages;
            acc.ops <- acc.ops + o.Fuzz_tester.cpu_ops_completed;
            acc.ops_expected <- acc.ops_expected + o.Fuzz_tester.cpu_ops_expected;
            acc.data_errors <- acc.data_errors + o.Fuzz_tester.cpu_data_errors;
            if o.Fuzz_tester.deadlocked then acc.deadlocks <- acc.deadlocks + 1;
            acc.violations <- acc.violations + o.Fuzz_tester.violations;
            (match o.Fuzz_tester.crashed with
            | Some _ -> acc.crashes <- acc.crashes + 1
            | None -> ());
            note_link acc ~faults:o.Fuzz_tester.link_faults
              ~quarantined:o.Fuzz_tester.quarantined;
            note_coverage cov;
            (* Guard violations are the fuzzer's *purpose*, and under the
               default shared-rw pool the accelerator may legitimately write
               the checked blocks, so data checks are advisory (paper §2.3.2);
               only a crash or deadlock fails a fuzz run. *)
            o.Fuzz_tester.crashed <> None || o.Fuzz_tester.deadlocked
        | Stress_r _ -> assert false)
  in
  let status acc = if acc.failed_runs = 0 then "ok" else "FAIL" in
  let lossy rows = Array.exists (fun (_, acc) -> acc.link_faults <> []) rows in
  let fault_columns = [ "injected"; "retx"; "quarantines" ] in
  let fault_cells acc =
    [
      Table.cell_int (injected_total acc.link_faults);
      Table.cell_int (count_of acc.link_faults "retransmit_frames");
      Table.cell_int acc.quarantines;
    ]
  in
  let tables = ref [] in
  if Array.length s_configs > 0 then begin
    let faulty = lossy stress_rows in
    let table =
      Table.create
        ~title:(Printf.sprintf "Campaign: random coherence stress (%d seeds/config)" seeds)
        ~columns:
          ([ "Configuration"; "runs"; "ops"; "data errors"; "deadlocks"; "violations";
             "crashes" ]
          @ (if faulty then fault_columns else [])
          @ [ "result" ])
    in
    Array.iter
      (fun (cfg, acc) ->
        Table.add_row table
          ([
             Config.name cfg;
             Table.cell_int acc.runs;
             Table.cell_int acc.ops;
             Table.cell_int acc.data_errors;
             Table.cell_int acc.deadlocks;
             Table.cell_int acc.violations;
             Table.cell_int acc.crashes;
           ]
          @ (if faulty then fault_cells acc else [])
          @ [ status acc ]))
      stress_rows;
    tables := [ table ]
  end;
  if Array.length f_configs > 0 then begin
    let faulty = lossy fuzz_rows in
    let table =
      Table.create
        ~title:(Printf.sprintf "Campaign: guard fuzzing (%d seeds/config)" seeds)
        ~columns:
          ([ "Configuration"; "runs"; "chaos msgs"; "cpu ops"; "data errors";
             "deadlocks"; "violations"; "crashes" ]
          @ (if faulty then fault_columns else [])
          @ [ "result" ])
    in
    Array.iter
      (fun (cfg, acc) ->
        Table.add_row table
          ([
             Config.name cfg;
             Table.cell_int acc.runs;
             Table.cell_int acc.chaos;
             Printf.sprintf "%d/%d" acc.ops acc.ops_expected;
             Table.cell_int acc.data_errors;
             Table.cell_int acc.deadlocks;
             Table.cell_int acc.violations;
             Table.cell_int acc.crashes;
           ]
          @ (if faulty then fault_cells acc else [])
          @ [ status acc ]))
      fuzz_rows;
    tables := !tables @ [ table ]
  end;
  let coverage =
    List.rev_map
      (fun name ->
        let space, groups = Hashtbl.find cov_tbl name in
        Coverage.analyze space !groups)
      !cov_order
    (* [cov_order] is built last-seen-first; rev_map restores first-seen order. *)
  in
  let failures =
    Array.fold_left (fun n (_, a) -> n + a.failed_runs) 0 stress_rows
    + Array.fold_left (fun n (_, a) -> n + a.failed_runs) 0 fuzz_rows
  in
  let crashes =
    Array.fold_left
      (fun n -> function Pool.Failed _ -> n + 1 | Pool.Done _ -> n)
      0 results
  in
  let span_tables =
    (* Metrics-only runs arm span recorders for quantile sampling, but the
       attribution tables remain opt-in via [spans] so metrics never change
       the pre-existing report text. *)
    if not spans then []
    else
      let of_rows label rows =
        List.filter_map
          (fun (cfg, acc) ->
            Spans.Summary.attribution_table
              ~title:
                (Printf.sprintf "Latency attribution (cycles): %s %s" label (Config.name cfg))
              acc.span)
          (Array.to_list rows)
      in
      of_rows "stress" stress_rows @ of_rows "fuzz" fuzz_rows
  in
  {
    tables = !tables;
    span_tables;
    coverage;
    trails = List.rev !trails;
    jobs;
    failures;
    crashes;
    metrics = !metrics_total;
    span_total = !span_total;
  }

let passed t = t.failures = 0

let render t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun table ->
      Buffer.add_string buf (Table.to_string table);
      Buffer.add_char buf '\n')
    t.tables;
  List.iter
    (fun table ->
      Buffer.add_string buf (Table.to_string table);
      Buffer.add_char buf '\n')
    t.span_tables;
  List.iter
    (fun report ->
      Buffer.add_string buf (Coverage.to_string report);
      Buffer.add_char buf '\n')
    t.coverage;
  Printf.bprintf buf "jobs %d  failures %d  crashes %d\n%s\n" t.jobs t.failures
    t.crashes
    (if t.failures = 0 then "PASS" else "FAIL");
  Buffer.contents buf
