module Engine = Xguard_sim.Engine
module Rng = Xguard_sim.Rng
module H = Xguard_host_hammer

type t = {
  engine : Engine.t;
  rng : Rng.t;
  registry : Node.Registry.t;
  net : H.Net.t;
  memory : Memory_model.t;
  directories : H.Directory.t array;
  cpus : H.L1l2.t array;
  mutable extras : (Node.t * (int -> unit)) list;
}

let engine t = t.engine
let rng t = t.rng
let registry t = t.registry
let net t = t.net
let memory t = t.memory
let directory t = t.directories.(0)
let directories t = t.directories
let cpus t = t.cpus

let router_of directories =
  match Array.length directories with
  | 1 ->
      let node = H.Directory.node directories.(0) in
      fun (_ : Addr.t) -> node
  | n ->
      let nodes = Array.map H.Directory.node directories in
      fun addr -> nodes.(Addr.to_int addr mod n)

let dir_router t = router_of t.directories

let create ?(num_cpus = 2) ?(variant = H.L1l2.Xg_ready) ?(sets = 2) ?(ways = 2)
    ?(ordering = Xguard_network.Network.Unordered { min_latency = 2; max_latency = 30 })
    ?(seed = 1) ?(dir_latency = 6) ?(mem_latency = 60) ?(dir_occupancy = 0)
    ?(dir_shards = 1) () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed in
  let registry = Node.Registry.create () in
  let net = H.Net.create ~engine ~rng:(Rng.split rng) ~name:"hammer.net" ~ordering () in
  let memory = Memory_model.create () in
  (* One shard keeps the historical node name "dir" so single-directory
     systems stay byte-identical; shards serve disjoint block sets, so they
     can share one memory model without racing. *)
  let directories =
    Array.init dir_shards (fun i ->
        let name = if dir_shards = 1 then "dir" else Printf.sprintf "dir%d" i in
        let node = Node.Registry.fresh registry name in
        H.Directory.create ~engine ~net ~name ~node ~memory ~dir_latency
          ~mem_latency ~occupancy:dir_occupancy ())
  in
  let route = router_of directories in
  let cpus =
    Array.init num_cpus (fun i ->
        let name = Printf.sprintf "cpu%d" i in
        let node = Node.Registry.fresh registry name in
        H.L1l2.create ~engine ~net ~name ~node ~directory:route ~variant ~sets ~ways ())
  in
  { engine; rng; registry; net; memory; directories; cpus; extras = [] }

let add_cache_node t name ~count_peers =
  let node = Node.Registry.fresh t.registry name in
  t.extras <- (node, count_peers) :: t.extras;
  node

let finalize t =
  let extra = List.rev t.extras in
  let cpu_nodes = Array.to_list (Array.map H.L1l2.node t.cpus) in
  let all = cpu_nodes @ List.map fst extra in
  let peers = List.length all - 1 in
  Array.iter (fun cpu -> H.L1l2.set_peer_count cpu peers) t.cpus;
  List.iter (fun (_, count_peers) -> count_peers peers) extra;
  Array.iter (fun d -> H.Directory.set_caches d all) t.directories

let cpu_ports t = Array.map H.L1l2.cpu_port t.cpus
let total_caches t = Array.length t.cpus + List.length t.extras
