module Engine = Xguard_sim.Engine
module Rng = Xguard_sim.Rng
module Histogram = Xguard_stats.Histogram
module Group = Xguard_stats.Counter.Group
module Workload = Xguard_workload.Workload
module Xg = Xguard_xg

type result = {
  config_name : string;
  workload_name : string;
  cycles : int;
  accel_accesses : int;
  mean_accel_latency : float;
  p99_accel_latency : int;
  host_bytes : int;
  link_bytes : int;
  xg_to_host_bytes : int;
  put_s_messages : int;
  put_s_suppressed : int;
  snoop_fast_path : int;
  snoop_roundtrip : int;
  violations : int;
}

(* Drive one stream through a sequencer, respecting its issue width. *)
let drive (seq : Sequencer.t) (stream : Workload.stream) ~on_all_done =
  let total = Array.length stream.Workload.accesses in
  if total = 0 then on_all_done ()
  else begin
    let issued = ref 0 and completed = ref 0 in
    let rec top_up () =
      if !issued < total && !issued - !completed < stream.Workload.max_outstanding then begin
        let access = stream.Workload.accesses.(!issued) in
        incr issued;
        Sequencer.request seq access ~on_complete:(fun _ ~latency:_ ->
            incr completed;
            if !completed = total then on_all_done () else top_up ());
        top_up ()
      end
    in
    top_up ()
  end

let run ?trace ?sim_j (cfg : Config.t) (workload : Workload.t) =
  let maybe_armed f =
    match trace with None -> f () | Some tr -> Xguard_trace.Trace.with_armed tr f
  in
  maybe_armed @@ fun () ->
  let sys = System.build ~pdes:(sim_j <> None) cfg in
  let coord = Option.map (fun _ -> Pdes.create sys) sim_j in
  (* Which engine each accelerator port's sequencer pumps on, and which
     per-domain completion counter its stream decrements.  Sequentially
     everything is domain 0 on the one engine; sharded, a port lives on its
     guard's domain and only that domain's window ever touches its counter. *)
  let accel_doms =
    match coord with
    | Some _ -> Pdes.accel_port_domains sys
    | None -> Array.make (Array.length sys.System.accel_ports) 0
  in
  let engine_of_dom d =
    match coord with Some c -> Pdes.engine_of c ~dom:d | None -> sys.System.engine
  in
  let ndoms = match coord with Some c -> Pdes.domains c | None -> 1 in
  let rng = Rng.create ~seed:(cfg.Config.seed * 131 + 17) in
  let accel_streams =
    workload.Workload.make_streams
      ~cores:(Array.length sys.System.accel_ports)
      ~rng:(Rng.split rng)
  in
  let cpu_streams =
    workload.Workload.cpu_streams ~cpus:(Array.length sys.System.cpu_ports) ~rng:(Rng.split rng)
  in
  let accel_latency = Histogram.create "accel.access_latency" in
  let pending = Array.make ndoms 0 in
  let finished d () = pending.(d) <- pending.(d) - 1 in
  (* Accelerator side. *)
  let accel_seqs =
    Array.mapi
      (fun i port ->
        Sequencer.create
          ~engine:(engine_of_dom accel_doms.(i))
          ~name:(Printf.sprintf "perf.accel%d" i)
          ~port ~max_outstanding:32 ())
      sys.System.accel_ports
  in
  Array.iteri
    (fun i stream ->
      if i < Array.length accel_seqs then begin
        let d = accel_doms.(i) in
        pending.(d) <- pending.(d) + 1;
        (* Wrap the sequencer latency histogram into a shared one. *)
        let seq = accel_seqs.(i) in
        drive seq stream ~on_all_done:(finished d)
      end)
    accel_streams;
  (* CPU side. *)
  let cpu_seqs =
    Array.mapi
      (fun i port ->
        Sequencer.create ~engine:sys.System.engine
          ~name:(Printf.sprintf "perf.cpu%d" i)
          ~port ~max_outstanding:16 ())
      sys.System.cpu_ports
  in
  Array.iteri
    (fun i stream ->
      if i < Array.length cpu_seqs then begin
        pending.(0) <- pending.(0) + 1;
        drive cpu_seqs.(i) stream ~on_all_done:(finished 0)
      end)
    cpu_streams;
  let max_events = 200_000_000 in
  let drained =
    match coord with
    | None -> (
        match Engine.run ~max_events sys.System.engine with
        | Engine.Drained -> true
        | _ -> false)
    | Some c -> (
        let workers = Option.value ~default:1 sim_j in
        match Pdes.run_windows ~max_events ~workers c with
        | Pdes.Drained -> true
        | Pdes.Hit_event_limit -> false)
  in
  if not drained then
    failwith ("perf run hit the event limit: " ^ Config.name cfg);
  let pending = Array.fold_left ( + ) 0 pending in
  if pending <> 0 then
    failwith
      (Printf.sprintf "perf run deadlocked: %s / %s (%d streams unfinished)" (Config.name cfg)
         workload.Workload.name pending);
  (* Gather accelerator latency out of the sequencers. *)
  let accesses = ref 0 in
  Array.iter
    (fun seq ->
      accesses := !accesses + Sequencer.completed seq;
      let h = Sequencer.latency seq in
      if Histogram.count h > 0 then
        List.iter
          (fun (lo, _, n) ->
            for _ = 1 to n do
              Histogram.observe accel_latency lo
            done)
          (Histogram.buckets h))
    accel_seqs;
  let xg_stat name =
    match sys.System.xg_core with
    | Some core -> Group.get (Xg.Xg_core.stats core) name
    | None -> 0
  in
  {
    config_name = Config.name cfg;
    workload_name = workload.Workload.name;
    cycles =
      (match coord with
      | Some c -> Pdes.cycles c
      | None -> Engine.now sys.System.engine);
    accel_accesses = !accesses;
    mean_accel_latency = Histogram.mean accel_latency;
    p99_accel_latency =
      (if Histogram.count accel_latency > 0 then Histogram.percentile accel_latency 0.99 else 0);
    host_bytes = sys.System.host_net_bytes ();
    link_bytes = sys.System.link_bytes ();
    xg_to_host_bytes = sys.System.xg_port_to_host_bytes ();
    put_s_messages = xg_stat "put_s_unnecessary" + xg_stat "put_s_forwarded";
    put_s_suppressed = xg_stat "put_s_suppressed";
    snoop_fast_path = xg_stat "snoop_fast_path" + xg_stat "side_channel_filtered";
    snoop_roundtrip = xg_stat "invalidate_to_accel";
    violations = Xg.Os_model.error_count sys.System.os;
  }
