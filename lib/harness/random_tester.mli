(** Random coherence tester (paper section 4.1).

    Reimplements the gem5 Ruby random-tester methodology: each core makes
    rapid loads and stores to a small pool of addresses (so contention and
    replacements are frequent) and the tester checks the data of every load.
    Message latencies are randomized by the system under test's network.

    The checker enforces per-location sequential consistency — the coherence
    invariant — without assuming anything about the protocol:

    - stores carry unique tokens; at most one store per address is in flight
      across all cores (the tester's issue discipline, as in Ruby's tester);
    - a load must observe either a value committed no earlier than the load's
      issue point, or the store currently in flight.

    Any stale or lost value is reported as a data error.  The tester also
    detects deadlock: if the event queue drains while accesses are
    outstanding, the run fails. *)

(** Issue mix of one tester core.  [Mixed] is the historical behaviour (a
    coin flip per issue, stores capped at one in flight per address);
    [Producer] stores whenever the address has no store in flight and loads
    otherwise; [Consumer] only loads.  A producer/consumer split across ports
    of different guards exercises inter-accelerator sharing: every consumer
    load validates data that crossed two guard links. *)
type role = Mixed | Producer | Consumer

type outcome = {
  ops_completed : int;
  data_errors : int;
  deadlocked : bool;
  cycles : int;
  first_error_addr : int option;
      (** the block of the first data error, for pulling its event trail out
          of an armed {!Xguard_trace.Trace} buffer *)
  ops_per_port : int array;
      (** completed operations per entry of [ports] — the per-accelerator
          progress counters behind the topology isolation experiments *)
}

val merge : outcome -> outcome -> outcome
(** Pure aggregation for sharded sweeps: operation, error and cycle counts
    add ([ops_per_port] element-wise, padding the shorter array), [deadlocked]
    ORs, and [first_error_addr] keeps the leftmost reported address.
    Associative, so per-seed outcomes fold in job order into exactly the
    totals a serial sweep would have accumulated. *)

type t
(** An armed tester: sequencers created and injection events scheduled on its
    engine, checker state live, but the engine not yet run.  The split lets
    the sharded simulator ({!Pdes}) arm one tester per domain and drive all
    the engines itself with the window coordinator. *)

val prepare :
  engine:Xguard_sim.Engine.t ->
  rng:Xguard_sim.Rng.t ->
  ports:Access.port array ->
  ?roles:role array ->
  addresses:Addr.t array ->
  ops_per_core:int ->
  ?store_fraction:float ->
  ?max_gap:int ->
  unit ->
  t
(** Everything {!run} does before running the engine: create one sequencer
    per entry of [ports] and schedule each core's randomized injection
    events.  Defaults match {!run}. *)

val finish : t -> drained:bool -> outcome
(** The tester's verdict once its engine has been run to completion (by any
    driver).  [drained] is whether the event queue fully drained — a
    watchdog stop or leftover outstanding accesses both report deadlock.
    [cycles] reads the tester's own engine clock. *)

val run :
  engine:Xguard_sim.Engine.t ->
  rng:Xguard_sim.Rng.t ->
  ports:Access.port array ->
  ?roles:role array ->
  addresses:Addr.t array ->
  ops_per_core:int ->
  ?store_fraction:float ->
  ?max_gap:int ->
  ?event_limit:int ->
  unit ->
  outcome
(** Drives one sequencer per entry of [ports].  [roles] (default all [Mixed],
    length must equal [ports]) fixes each core's issue mix; only [Mixed]
    cores consume store/load coin flips, so the default reproduces the
    role-less tester's RNG stream exactly.  [max_gap] is the largest random
    delay between consecutive issues by one core.  [event_limit] bounds the
    run as a watchdog (default 50 million events). *)
