(** Declarative multi-accelerator topology descriptions.

    A topology names one host protocol and N accelerators, each fronted by
    its own Crossing Guard instance over its own link.  It replaces the
    fixed single-accelerator organization picker for systems that scale the
    guard out: the harness builds one {!Xguard_xg.Xg_core} per spec, all
    sharing the host protocol (and, on Hammer, an address-interleaved
    directory — see [dir_shards]).

    Topologies parse from a compact one-line syntax (the CLI [--topology]
    flag) and validate structurally before any hardware is built.  See
    docs/TOPOLOGY.md for the operator guide with worked examples.

    {2 Syntax}

    {v
    TOPO  := HOST [":shards=" INT] (";" ACCEL)+
    HOST  := "hammer" | "mesi"
    ACCEL := ID "=" ATTR ("," ATTR)*
    ATTR  := "full" | "trans"            guard mode (default trans)
           | "cached" | "uncached"       device keeps a cache? (default cached)
           | "2lvl"                      L1s over a shared accel L2
           | "cores=" INT                L1 count for 2lvl (default 2)
           | "lat=" INT                  link latency, cycles (default 8)
           | "jitter=" INT               0 = ordered link; >0 = unordered,
                                         delays drawn from [1, lat+jitter]
           | "drop=" F | "dup=" F | "corrupt=" F | "delay=" F
                                         per-message fault probabilities
           | "fault=" SCRIPT             deterministic Nth-message fault,
                                         KIND:N[:NEEDLE] as in --fault-script
    v}

    Example: ["hammer:shards=2;gpu0=trans,cached;nic0=full,uncached,lat=12"]. *)

type host = Hammer | Mesi

type variant = Full_state | Transactional

(** One accelerator and the guard instance that fronts it. *)
type accel_spec = {
  id : string;  (** unique per topology; [[A-Za-z0-9_-]+] *)
  variant : variant;  (** guard mode for this device *)
  cached : bool;
      (** [false] models an uncached (CXL.io-style) device: a single-line
          buffer stands in for its "cache", so every new block crosses the
          link and the device never keeps resident state *)
  two_level : bool;  (** L1s over a shared accelerator L2 (needs [cached]) *)
  cores : int;  (** accelerator cores (= L1s) when [two_level] *)
  link_latency : int;  (** guard-accelerator link latency, cycles *)
  link_jitter : int;
      (** [0]: the paper's ordered link at [link_latency].  [> 0]: unordered
          delivery with per-message delays in [[1, link_latency + jitter]] *)
  faults : Xguard_network.Network.Fault.config option;
      (** per-link fault model; [None] inherits the config-level model *)
  fault_scripts : Xguard_network.Network.Fault.script list;
      (** deterministic per-link faults, appended to config-level scripts *)
}

type t = {
  host : host;
  dir_shards : int;
      (** Hammer only: the blocking directory is split into this many
          address-interleaved shards (block [b] is served by shard
          [b mod dir_shards]), so N guards stop serializing behind a single
          controller.  [1] reproduces the historical single directory
          byte-for-byte.  Ignored by the MESI host (its inclusive L2 already
          arbitrates per block). *)
  accels : accel_spec list;
}

val default_accel : string -> accel_spec
(** Transactional, cached, one-level, lat 8, ordered, fault-free. *)

val validate : t -> (t, string) result
(** Structural checks: at least one accelerator, unique well-formed ids,
    [1 <= dir_shards <= 64], positive latencies, probabilities in [0, 1],
    [cores] in [1, 8], and [uncached] excludes [2lvl].  Returns the topology
    unchanged on success. *)

val of_string : string -> (t, string) result
(** Parse and {!validate} the CLI syntax above. *)

val to_string : t -> string
(** Canonical round-trippable form: [of_string (to_string t) = Ok t] for any
    validated [t]. *)

val name : t -> string
(** Short report label, e.g. ["hammer:2/topo[gpu0,nic0,fpga0]"] (the [:2] is
    the shard count, omitted when 1). *)

val symmetric : ?host:host -> ?shards:int -> ?base_latency:int -> int -> t
(** [symmetric n] builds a mixed n-accelerator topology for sweeps and tests:
    ids [a0..a(n-1)], alternating Transactional/Full-State guards, every
    third device uncached, staggered link latencies. *)
