module Engine = Xguard_sim.Engine
module Rng = Xguard_sim.Rng
module Trace = Xguard_trace.Trace

type role = Mixed | Producer | Consumer

type outcome = {
  ops_completed : int;
  data_errors : int;
  deadlocked : bool;
  cycles : int;
  first_error_addr : int option;
  ops_per_port : int array;
}

let merge a b =
  {
    ops_completed = a.ops_completed + b.ops_completed;
    data_errors = a.data_errors + b.data_errors;
    deadlocked = a.deadlocked || b.deadlocked;
    cycles = a.cycles + b.cycles;
    first_error_addr =
      (match a.first_error_addr with Some _ as x -> x | None -> b.first_error_addr);
    ops_per_port =
      (let n = max (Array.length a.ops_per_port) (Array.length b.ops_per_port) in
       Array.init n (fun i ->
           let get arr = if i < Array.length arr then arr.(i) else 0 in
           get a.ops_per_port + get b.ops_per_port));
  }

(* Per-address checker state: the log of committed store values (so a load can
   be validated against everything committed since it was issued) and the
   single in-flight store, if any. *)
type addr_state = {
  mutable committed : Data.t list;  (* newest first; head is current value *)
  mutable committed_count : int;
  mutable pending_store : Data.t option;
}

type t = {
  engine : Engine.t;
  rng : Rng.t;
  sequencers : Sequencer.t array;
  roles : role array;
  addresses : Addr.t array;
  states : (Addr.t, addr_state) Hashtbl.t;
  store_fraction : float;
  max_gap : int;
  ops_per_core : int;
  completed_per : int array;
  mutable completed : int;
  mutable errors : int;
  mutable first_error_addr : int option;
  mutable next_token : int;
}

let state_of t addr =
  match Hashtbl.find_opt t.states addr with
  | Some s -> s
  | None ->
      let s =
        { committed = [ Data.initial addr ]; committed_count = 1; pending_store = None }
      in
      Hashtbl.add t.states addr s;
      s

(* Values a load issued when [issue_count] values had been committed may
   legally observe now: anything committed since, or the in-flight store. *)
let load_ok st ~issue_count value =
  let visible_len = st.committed_count - issue_count + 1 in
  let rec among n = function
    | [] -> false
    | v :: rest -> n > 0 && (Data.equal v value || among (n - 1) rest)
  in
  among visible_len st.committed
  || match st.pending_store with Some v -> Data.equal v value | None -> false

let issue_one t core =
  let seq = t.sequencers.(core) in
  let addr = Rng.pick t.rng t.addresses in
  let st = state_of t addr in
  let do_store =
    (* [Mixed] draws exactly as the role-less tester did (the chance draw is
       short-circuited away while a store is pending), so default runs keep
       their historical RNG stream; the fixed roles draw nothing extra. *)
    match t.roles.(core) with
    | Mixed -> st.pending_store = None && Rng.chance t.rng t.store_fraction
    | Producer -> st.pending_store = None
    | Consumer -> false
  in
  let complete () =
    t.completed <- t.completed + 1;
    t.completed_per.(core) <- t.completed_per.(core) + 1
  in
  if do_store then begin
    t.next_token <- t.next_token + 1;
    let v = Data.token t.next_token in
    st.pending_store <- Some v;
    Sequencer.request seq (Access.store addr v) ~on_complete:(fun _ ~latency:_ ->
        st.pending_store <- None;
        st.committed <- v :: st.committed;
        st.committed_count <- st.committed_count + 1;
        complete ())
  end
  else begin
    let issue_count = st.committed_count in
    let issued_at = Engine.now t.engine in
    Sequencer.request seq (Access.load addr) ~on_complete:(fun v ~latency:_ ->
        if not (load_ok st ~issue_count v) then begin
          t.errors <- t.errors + 1;
          if t.first_error_addr = None then t.first_error_addr <- Some (Addr.to_int addr);
          if Trace.on () then
            Trace.note ~cycle:(Engine.now t.engine)
              ~controller:(Sequencer.name seq) ~addr:(Addr.to_int addr)
              ~text:
                (Printf.sprintf
                   "DATA ERROR: core=%d got=%d committed_head=%d pending=%s issued@%d" core
                   v
                   (match st.committed with x :: _ -> x | [] -> -1)
                   (match st.pending_store with Some x -> string_of_int x | None -> "-")
                   issued_at)
              ();
          if Sys.getenv_opt "XGUARD_DEBUG" <> None then
            Printf.eprintf
              "DATA ERROR: core=%d addr=%d got=%d committed_head=%d pending=%s issue@%d done@%d\n%!"
              core (Addr.to_int addr) v
              (match st.committed with x :: _ -> x | [] -> -1)
              (match st.pending_store with Some x -> string_of_int x | None -> "-")
              issued_at (Engine.now t.engine)
        end;
        complete ())
  end

let prepare ~engine ~rng ~ports ?roles ~addresses ~ops_per_core
    ?(store_fraction = 0.5) ?(max_gap = 20) () =
  let roles =
    match roles with
    | Some r ->
        assert (Array.length r = Array.length ports);
        r
    | None -> Array.make (Array.length ports) Mixed
  in
  let sequencers =
    Array.mapi
      (fun i port ->
        Sequencer.create ~engine ~name:(Printf.sprintf "tester.core%d" i) ~port
          ~max_outstanding:4 ())
      ports
  in
  let t =
    {
      engine;
      rng;
      sequencers;
      roles;
      addresses;
      states = Hashtbl.create 64;
      store_fraction;
      max_gap;
      ops_per_core;
      completed_per = Array.make (Array.length ports) 0;
      completed = 0;
      errors = 0;
      first_error_addr = None;
      next_token = 1_000_000;
    }
  in
  (* Each core issues its ops at random intervals. *)
  Array.iteri
    (fun core _ ->
      let rec inject remaining =
        if remaining > 0 then
          Engine.schedule engine ~delay:(1 + Rng.int t.rng t.max_gap) (fun () ->
              issue_one t core;
              inject (remaining - 1))
      in
      inject ops_per_core)
    sequencers;
  t

let finish t ~drained =
  let total = t.ops_per_core * Array.length t.sequencers in
  let deadlocked = (not drained) || t.completed < total in
  {
    ops_completed = t.completed;
    data_errors = t.errors;
    deadlocked;
    cycles = Engine.now t.engine;
    first_error_addr = t.first_error_addr;
    ops_per_port = t.completed_per;
  }

let run ~engine ~rng ~ports ?roles ~addresses ~ops_per_core ?store_fraction
    ?max_gap ?(event_limit = 50_000_000) () =
  let t =
    prepare ~engine ~rng ~ports ?roles ~addresses ~ops_per_core ?store_fraction
      ?max_gap ()
  in
  let result = Engine.run ~max_events:event_limit engine in
  finish t ~drained:(match result with Engine.Drained -> true | _ -> false)
