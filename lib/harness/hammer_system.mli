(** Builder for a Hammer-host system: CPUs + directory + memory on one
    unordered network, with room to attach a Crossing Guard port or an
    accelerator-side cache as an extra peer.

    Construction is two-phase because the broadcast protocol needs the final
    cache census: create the system, attach any extra cache nodes, then
    {!finalize} to distribute peer counts and every directory shard's forward
    list.

    The blocking directory serializes transactions per block, which makes a
    single directory the whole-system bottleneck once several guards contend
    on it.  [dir_shards > 1] splits it into address-interleaved shards: block
    [b] is served by shard [b mod dir_shards], each shard is an independent
    {!Xguard_host_hammer.Directory} instance with its own occupancy server,
    and caches route each request with {!dir_router}.  Correctness is
    untouched because the protocol never needs two blocks to agree on an
    ordering — every transaction, queue and owner record is per block, so an
    interleaved partition of the block space partitions the directory state
    exactly. *)

type t

val create :
  ?num_cpus:int ->
  ?variant:Xguard_host_hammer.L1l2.variant ->
  ?sets:int ->
  ?ways:int ->
  ?ordering:Xguard_network.Network.ordering ->
  ?seed:int ->
  ?dir_latency:int ->
  ?mem_latency:int ->
  ?dir_occupancy:int ->
  ?dir_shards:int ->
  unit ->
  t
(** [dir_shards] (default 1) address-interleaves the directory.  One shard
    keeps the historical node name ["dir"], so existing single-directory
    systems are byte-identical; [n > 1] shards are named ["dir0".."dir<n-1>"]
    and all share one memory model (safe: shards serve disjoint blocks). *)

val engine : t -> Xguard_sim.Engine.t
val rng : t -> Xguard_sim.Rng.t
val registry : t -> Node.Registry.t
val net : t -> Xguard_host_hammer.Net.t
val memory : t -> Memory_model.t
val directory : t -> Xguard_host_hammer.Directory.t
(** Shard 0 — the only shard when [dir_shards = 1]. *)

val directories : t -> Xguard_host_hammer.Directory.t array
(** All shards, in interleave order. *)

val dir_router : t -> Addr.t -> Node.t
(** The address-interleave function: block [b] -> node of shard
    [b mod dir_shards].  Pass as the [directory] argument of any cache-like
    peer attached after {!create}. *)

val cpus : t -> Xguard_host_hammer.L1l2.t array

val add_cache_node : t -> string -> count_peers:(int -> unit) -> Node.t
(** Reserve a network node for an additional cache-like peer (the XG port, or
    an unsafe accelerator-side cache).  [count_peers] is called by
    {!finalize} with the number of *other* caches. *)

val finalize : t -> unit
(** Set every cache's peer count and the directory's forward list.  Must be
    called exactly once, after all caches exist. *)

val cpu_ports : t -> Access.port array
val total_caches : t -> int
