(** Configuration space of the evaluation (paper §3, Figure 2).

    Two host protocols x (accelerator-side cache | host-side cache | Crossing
    Guard x {Full-State, Transactional} x {one-level, two-level accelerator
    protocol}) = the paper's 8 Crossing Guard configurations plus 4 without
    it. *)

type host = Topology.host = Hammer | Mesi
(** Re-exported from {!Topology} so a config and a topology description agree
    on the host protocol by construction. *)

type xg_variant = Topology.variant = Full_state | Transactional

type accel_org =
  | Accel_side  (** (a) unsafe: an accelerator cache speaking the host protocol *)
  | Host_side  (** (b) safe but slow: loads/stores cross to a host-side cache *)
  | Xg_one_level of xg_variant  (** (c) Crossing Guard + private accel L1 *)
  | Xg_two_level of xg_variant  (** (d) Crossing Guard + L1s over a shared accel L2 *)

type t = {
  host : host;
  org : accel_org;
  topology : Topology.t option;
      (** [Some topo]: the system is built from the declarative topology — N
          guards, each fronting its own accelerator, sharing [host]'s protocol
          (and [org] is ignored).  [None]: the historical single-accelerator
          organization picker, byte-for-byte. *)
  num_cpus : int;
  num_accel_cores : int;  (** forced to 1 unless the org is two-level *)
  seed : int;
  (* cache geometry *)
  cpu_sets : int;
  cpu_ways : int;
  accel_sets : int;
  accel_ways : int;
  accel_l2_sets : int;
  accel_l2_ways : int;
  host_l2_sets : int;  (** MESI shared L2 *)
  host_l2_ways : int;
  (* latencies *)
  host_net_min : int;
  host_net_max : int;
  link_latency : int;  (** XG-accelerator link / host-side-cache access link *)
  link_ordered : bool;
      (** ablation A1: the paper requires an ordered XG-accelerator link;
          [false] deliberately violates that requirement *)
  mem_latency : int;
  dir_occupancy : int;
      (** finite directory pipeline throughput (cycles a message holds the
          controller); 0 = unbounded.  Used by the DoS experiment E7. *)
  (* guard knobs *)
  xg_timeout : int;
  suppress_put_s : bool;
  rate_limit : (float * int) option;  (** tokens per cycle, burst *)
  os_policy : Xguard_xg.Os_model.policy;
  (* lossy XG-accelerator link (PR 3) *)
  link_faults : Xguard_network.Network.Fault.config option;
      (** [None]: the historical perfectly-reliable link, byte-for-byte.
          [Some f]: the link runs the seq+checksum reliability layer and
          injects faults per [f] ([Fault.zero] = reliability on, injection
          off). *)
  link_fault_scripts : Xguard_network.Network.Fault.script list;
      (** deterministic Nth-message faults; any script also turns the
          reliability layer on *)
  link_retry_timeout : int;  (** initial retransmission timeout, cycles *)
  link_max_retries : int;  (** silent rounds before a fault is escalated *)
  quarantine_after : int;  (** consecutive faults before quarantine *)
  (* recovery lifecycle and hang budgets (PR 8) *)
  recovery : Xguard_xg.Xg_core.recovery option;
      (** [None]: quarantine stays terminal, byte-for-byte.  [Some r]: every
          guard runs the quarantine → reset → probation → rejoin lifecycle;
          the reset handler flushes the guard's accelerator cache stack. *)
  budgets : Xguard_xg.Xg_core.budgets;
      (** per-phase hang budgets, {!Xguard_xg.Xg_core.no_budgets} (all off,
          byte-for-byte) by default *)
}

val default : t
(** Hammer + Transactional one-level XG, 2 CPUs, perf-sized caches. *)

val make : ?base:t -> host -> accel_org -> t

val of_topology : ?base:t -> Topology.t -> t
(** Wrap a validated topology in a config: host taken from the topology,
    cache geometry / host-net latencies / guard knobs inherited from [base]
    (default {!default}).  Per-accelerator link parameters live in the
    topology's specs and override the config-level [link_latency] and
    [link_faults] for each guard. *)

val stress_sized : t -> t
(** Shrink caches and widen network jitter for the random tester (§4.1). *)

val name : t -> string
(** e.g. ["hammer/xg-trans-1lvl"]. *)

val host_label : host -> string
val org_label : accel_org -> string

val all_configurations : ?base:t -> unit -> t list
(** The 12 evaluated configurations, Hammer first. *)

val uses_xg : t -> bool

val reliable_link : t -> bool
(** Whether the XG-accelerator link runs the reliability layer (a fault model
    is installed or scripts are present). *)

val faults_active : t -> bool
(** Whether any fault can actually be injected — [Some Fault.zero] with no
    scripts is reliable but fault-free. *)
