type host = Topology.host = Hammer | Mesi

type xg_variant = Topology.variant = Full_state | Transactional

type accel_org =
  | Accel_side
  | Host_side
  | Xg_one_level of xg_variant
  | Xg_two_level of xg_variant

type t = {
  host : host;
  org : accel_org;
  topology : Topology.t option;
  num_cpus : int;
  num_accel_cores : int;
  seed : int;
  cpu_sets : int;
  cpu_ways : int;
  accel_sets : int;
  accel_ways : int;
  accel_l2_sets : int;
  accel_l2_ways : int;
  host_l2_sets : int;
  host_l2_ways : int;
  host_net_min : int;
  host_net_max : int;
  link_latency : int;
  link_ordered : bool;
  mem_latency : int;
  dir_occupancy : int;
  xg_timeout : int;
  suppress_put_s : bool;
  rate_limit : (float * int) option;
  os_policy : Xguard_xg.Os_model.policy;
  link_faults : Xguard_network.Network.Fault.config option;
  link_fault_scripts : Xguard_network.Network.Fault.script list;
  link_retry_timeout : int;
  link_max_retries : int;
  quarantine_after : int;
  recovery : Xguard_xg.Xg_core.recovery option;
  budgets : Xguard_xg.Xg_core.budgets;
}

let default =
  {
    host = Hammer;
    org = Xg_one_level Transactional;
    topology = None;
    num_cpus = 2;
    num_accel_cores = 1;
    seed = 42;
    cpu_sets = 32;
    cpu_ways = 4;
    accel_sets = 16;
    accel_ways = 4;
    accel_l2_sets = 32;
    accel_l2_ways = 8;
    host_l2_sets = 64;
    host_l2_ways = 8;
    host_net_min = 10;
    host_net_max = 14;
    link_latency = 8;
    link_ordered = true;
    mem_latency = 60;
    dir_occupancy = 0;
    xg_timeout = 4000;
    suppress_put_s = false;
    rate_limit = None;
    os_policy = Xguard_xg.Os_model.Log_only;
    link_faults = None;
    link_fault_scripts = [];
    link_retry_timeout = 32;
    link_max_retries = 6;
    quarantine_after = 3;
    recovery = None;
    budgets = Xguard_xg.Xg_core.no_budgets;
  }

let make ?(base = default) host org =
  let num_accel_cores =
    match org with Xg_two_level _ -> max base.num_accel_cores 2 | _ -> 1
  in
  { base with host; org; num_accel_cores }

let stress_sized t =
  {
    t with
    cpu_sets = 1;
    cpu_ways = 2;
    accel_sets = 1;
    accel_ways = 2;
    accel_l2_sets = 2;
    accel_l2_ways = 2;
    host_l2_sets = 2;
    host_l2_ways = 2;
    host_net_min = 1;
    host_net_max = 40;
  }

let host_name = function Hammer -> "hammer" | Mesi -> "mesi"

let org_name = function
  | Accel_side -> "accel-side"
  | Host_side -> "host-side"
  | Xg_one_level Full_state -> "xg-full-1lvl"
  | Xg_one_level Transactional -> "xg-trans-1lvl"
  | Xg_two_level Full_state -> "xg-full-2lvl"
  | Xg_two_level Transactional -> "xg-trans-2lvl"

let host_label = host_name
let org_label = org_name

let name t =
  match t.topology with
  | Some topo -> Topology.name topo
  | None -> host_name t.host ^ "/" ^ org_name t.org

let uses_xg t =
  t.topology <> None
  || match t.org with Xg_one_level _ | Xg_two_level _ -> true | _ -> false

let of_topology ?(base = default) (topo : Topology.t) =
  { base with host = topo.Topology.host; topology = Some topo }

(* A spec with [faults = None] inherits the config-level model, so only
   explicit per-link settings widen the config-level answer here. *)
let spec_faulty (a : Topology.accel_spec) =
  a.Topology.faults <> None || a.Topology.fault_scripts <> []

let spec_faults_active (a : Topology.accel_spec) =
  a.Topology.fault_scripts <> []
  || match a.Topology.faults with
     | Some f -> Xguard_network.Network.Fault.active f
     | None -> false

let reliable_link t =
  t.link_faults <> None || t.link_fault_scripts <> []
  || match t.topology with
     | Some topo -> List.exists spec_faulty topo.Topology.accels
     | None -> false

let faults_active t =
  t.link_fault_scripts <> []
  || (match t.link_faults with
     | Some f -> Xguard_network.Network.Fault.active f
     | None -> false)
  || match t.topology with
     | Some topo -> List.exists spec_faults_active topo.Topology.accels
     | None -> false

let all_configurations ?base () =
  let orgs =
    [
      Accel_side;
      Host_side;
      Xg_one_level Full_state;
      Xg_one_level Transactional;
      Xg_two_level Full_state;
      Xg_two_level Transactional;
    ]
  in
  List.concat_map (fun host -> List.map (fun org -> make ?base host org) orgs) [ Hammer; Mesi ]
