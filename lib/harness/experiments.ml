module Engine = Xguard_sim.Engine
module Rng = Xguard_sim.Rng
module Table = Xguard_stats.Table
module Coverage = Xguard_trace.Coverage
module Group = Xguard_stats.Counter.Group
module Xg = Xguard_xg
module W = Xguard_workload.Workload
module L1 = Xguard_accel.L1_simple

type report = { id : string; title : string; tables : Table.t list }

let xg_configs () = List.filter Config.uses_xg (Config.all_configurations ())

(* ---------- T1 ---------- *)

let t1_transition_table () =
  let module Spec = L1.Spec in
  let columns =
    "States"
    :: List.map Spec.event_to_string Spec.all_events
  in
  let table =
    Table.create ~title:"Table 1: accelerator L1 cache implementing the XG interface" ~columns
  in
  List.iter
    (fun state ->
      let cells =
        List.map
          (fun event ->
            match Spec.mesi state event with
            | Spec.Impossible -> "-"
            | Spec.Entry { action; next } ->
                if next = state then (if action = "-" then "." else action)
                else if action = "-" || action = "hit" then
                  Printf.sprintf "%s / %s" action (Spec.state_to_string next)
                else Printf.sprintf "%s / %s" action (Spec.state_to_string next))
          Spec.all_events
      in
      Table.add_row table (Spec.state_to_string state :: cells))
    Spec.all_states;
  { id = "t1"; title = "Table 1 (accelerator transition matrix)"; tables = [ table ] }

(* ---------- F1 ---------- *)

let f1_guarantees () =
  let table =
    Table.create ~title:"Figure 1: guarantee enforcement (detected / host stays live)"
      ~columns:
        [ "Scenario"; "hammer full"; "hammer trans"; "mesi full"; "mesi trans" ]
  in
  let cell outcome =
    Printf.sprintf "%s / %s"
      (if outcome.Fault_scenarios.detected then "detected" else "tolerated")
      (if outcome.Fault_scenarios.host_live then "live" else "WEDGED")
  in
  let configs =
    [
      Config.make Config.Hammer (Config.Xg_one_level Config.Full_state);
      Config.make Config.Hammer (Config.Xg_one_level Config.Transactional);
      Config.make Config.Mesi (Config.Xg_one_level Config.Full_state);
      Config.make Config.Mesi (Config.Xg_one_level Config.Transactional);
    ]
  in
  (* Every scenario run also surfaces its guard coverage; the merged XG
     matrices below show which (state x event) pairs the directed faults
     actually exercised, alongside the verdict table. *)
  let cov_order : string list ref = ref [] in
  let cov_tbl : (string, Coverage.space * Xguard_stats.Counter.Group.t list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let is_xg name = String.length name >= 2 && String.sub name 0 2 = "xg" in
  let note_coverage sets =
    List.iter
      (fun (name, space, groups) ->
        if is_xg name then
          match Hashtbl.find_opt cov_tbl name with
          | Some (_, acc) -> acc := !acc @ groups
          | None ->
              cov_order := name :: !cov_order;
              Hashtbl.add cov_tbl name (space, ref groups))
      sets
  in
  List.iter
    (fun scenario ->
      let cells =
        List.map
          (fun cfg ->
            let outcome = Fault_scenarios.run cfg scenario in
            note_coverage outcome.Fault_scenarios.coverage_sets;
            cell outcome)
          configs
      in
      Table.add_row table (Fault_scenarios.scenario_name scenario :: cells))
    Fault_scenarios.all_scenarios;
  let cov_tables =
    List.rev_map
      (fun name ->
        let space, groups = Hashtbl.find cov_tbl name in
        Coverage.to_table (Coverage.analyze space !groups))
      !cov_order
  in
  { id = "f1"; title = "Figure 1 (guarantees)"; tables = table :: cov_tables }

(* ---------- F2 ---------- *)

let f2_organizations ?(quick = false) () =
  let w = if quick then W.blocked ~tiles:8 () else W.blocked () in
  let table =
    Table.create
      ~title:"Figure 2: the four accelerator cache organizations, same kernel (blocked)"
      ~columns:[ "Organization"; "host"; "cycles"; "mean access latency"; "violations" ]
  in
  List.iter
    (fun host ->
      List.iter
        (fun org ->
          let r = Perf_runner.run (Config.make host org) w in
          Table.add_row table
            [
              Config.org_label org;
              Config.host_label host;
              Table.cell_int r.Perf_runner.cycles;
              Table.cell_float r.Perf_runner.mean_accel_latency;
              Table.cell_int r.Perf_runner.violations;
            ])
        [
          Config.Accel_side;
          Config.Host_side;
          Config.Xg_one_level Config.Transactional;
          Config.Xg_two_level Config.Transactional;
        ];
      Table.add_separator table)
    [ Config.Hammer; Config.Mesi ];
  { id = "f2"; title = "Figure 2 (organizations)"; tables = [ table ] }

(* ---------- E1 ---------- *)

let e1_stress ?(quick = false) () =
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3; 4; 5 ] in
  let ops = if quick then 200 else 600 in
  let table =
    Table.create ~title:"E1: random coherence stress (all 12 configurations)"
      ~columns:
        [ "Configuration"; "ops"; "data errors"; "deadlocks"; "violations"; "transitions seen" ]
  in
  List.iter
    (fun cfg ->
      let total_ops = ref 0 and errors = ref 0 and deadlocks = ref 0 and violations = ref 0 in
      let coverage = Hashtbl.create 64 in
      List.iter
        (fun seed ->
          let cfg = Config.stress_sized { cfg with Config.seed } in
          let sys = System.build cfg in
          let ports = Array.append sys.System.cpu_ports sys.System.accel_ports in
          let o =
            Random_tester.run ~engine:sys.System.engine
              ~rng:(Rng.create ~seed:(seed * 7 + 1))
              ~ports
              ~addresses:(Array.init 6 Addr.block)
              ~ops_per_core:ops ()
          in
          total_ops := !total_ops + o.Random_tester.ops_completed;
          errors := !errors + o.Random_tester.data_errors;
          if o.Random_tester.deadlocked then incr deadlocks;
          violations := !violations + Xg.Os_model.error_count sys.System.os;
          List.iter
            (fun (group_name, group) ->
              List.iter
                (fun (key, n) ->
                  if n > 0 then
                    (* Merge same-class controllers (cpu0/cpu1/l1_0...) *)
                    let cls =
                      match String.index_opt group_name '_' with
                      | Some i when String.length group_name > i -> String.sub group_name 0 i
                      | _ -> (
                          match String.index_opt group_name '0' with
                          | Some i -> String.sub group_name 0 i
                          | None -> group_name)
                    in
                    Hashtbl.replace coverage (cls ^ ":" ^ key) ())
                (Group.to_list group))
            (sys.System.coverage_groups ()))
        seeds;
      Table.add_row table
        [
          Config.name cfg;
          Table.cell_int !total_ops;
          Table.cell_int !errors;
          Table.cell_int !deadlocks;
          Table.cell_int !violations;
          Table.cell_int (Hashtbl.length coverage);
        ])
    (Config.all_configurations ());
  { id = "e1"; title = "E1 (protocol stress test)"; tables = [ table ] }

(* ---------- E2 ---------- *)

let e2_fuzz ?(quick = false) () =
  let cpu_ops = if quick then 150 else 300 in
  let table =
    Table.create ~title:"E2: fuzzing the guard with a pathological accelerator"
      ~columns:
        [
          "Configuration";
          "chaos msgs";
          "cpu ops";
          "crashed";
          "deadlocked";
          "violations";
          "timeouts";
        ]
  in
  let row cfg label o =
    Table.add_row table
      [
        label;
        Table.cell_int o.Fuzz_tester.chaos_messages;
        Printf.sprintf "%d/%d" o.Fuzz_tester.cpu_ops_completed o.Fuzz_tester.cpu_ops_expected;
        (match o.Fuzz_tester.crashed with Some _ -> "CRASH" | None -> "no");
        (if o.Fuzz_tester.deadlocked then "DEADLOCK" else "no");
        Table.cell_int o.Fuzz_tester.violations;
        Table.cell_int
          (try List.assoc Xg.Os_model.Response_timeout o.Fuzz_tester.violations_by_kind
           with Not_found -> 0);
      ];
    ignore cfg
  in
  List.iter
    (fun cfg -> row cfg (Config.name cfg) (Fuzz_tester.run cfg ~cpu_ops ()))
    (xg_configs ());
  Table.add_separator table;
  (* A mute accelerator (never answers an Invalidate) forces the G2c timeout
     path; a short deadline keeps the run fast. *)
  List.iter
    (fun (host, variant) ->
      let cfg = Config.make host (Config.Xg_one_level variant) in
      let cfg = { cfg with Config.xg_timeout = 400 } in
      row cfg
        (Config.name cfg ^ " (mute)")
        (Fuzz_tester.run cfg ~pool:Fuzz_tester.Shared_ro ~respond_probability:0.0
           ~requests_only:true ~cpu_ops ()))
    [
      (Config.Hammer, Config.Full_state);
      (Config.Hammer, Config.Transactional);
      (Config.Mesi, Config.Full_state);
      (Config.Mesi, Config.Transactional);
    ];
  { id = "e2"; title = "E2 (fuzz safety)"; tables = [ table ] }

(* ---------- E3 ---------- *)

let e3_performance ?(quick = false) () =
  let workloads =
    if quick then [ W.blocked ~tiles:12 (); W.graph ~nodes:64 ~steps:600 () ] else W.all ()
  in
  let orgs =
    [
      Config.Accel_side;
      Config.Host_side;
      Config.Xg_one_level Config.Full_state;
      Config.Xg_one_level Config.Transactional;
      Config.Xg_two_level Config.Full_state;
      Config.Xg_two_level Config.Transactional;
    ]
  in
  let tables =
    List.map
      (fun host ->
        let table =
          Table.create
            ~title:
              (Printf.sprintf
                 "E3 (%s host): runtime normalized to the unsafe accelerator-side cache"
                 (Config.host_label host))
            ~columns:("Configuration" :: List.map (fun w -> w.W.name) workloads)
        in
        let results =
          List.map
            (fun org ->
              (org, List.map (fun w -> Perf_runner.run (Config.make host org) w) workloads))
            orgs
        in
        let baseline =
          match results with (_, rs) :: _ -> List.map (fun r -> r.Perf_runner.cycles) rs | [] -> []
        in
        List.iter
          (fun (org, rs) ->
            let cells =
              List.map2
                (fun r base ->
                  Table.cell_ratio (float_of_int r.Perf_runner.cycles /. float_of_int base))
                rs baseline
            in
            Table.add_row table (Config.org_label org :: cells))
          results;
        table)
      [ Config.Hammer; Config.Mesi ]
  in
  { id = "e3"; title = "E3 (performance)"; tables }

(* ---------- E4 ---------- *)

let e4_puts_overhead ?(quick = false) () =
  let w = if quick then W.shared_sweep ~length:256 () else W.shared_sweep () in
  let table =
    Table.create ~title:"E4: unnecessary PutS traffic (paper: 1-4% of XG-to-host bandwidth)"
      ~columns:
        [
          "Configuration";
          "suppress reg";
          "PutS to host";
          "PutS suppressed";
          "XG-to-host bytes";
          "PutS share of XG-to-host bw";
        ]
  in
  let puts_bytes n = n * Xguard_network.Network.control_size in
  List.iter
    (fun (host, org) ->
      List.iter
        (fun suppress ->
          let cfg = { (Config.make host org) with Config.suppress_put_s = suppress } in
          let r = Perf_runner.run cfg w in
          let share =
            if r.Perf_runner.xg_to_host_bytes = 0 then 0.0
            else
              float_of_int (puts_bytes r.Perf_runner.put_s_messages)
              /. float_of_int r.Perf_runner.xg_to_host_bytes
          in
          Table.add_row table
            [
              Config.name cfg;
              (if suppress then "on" else "off");
              Table.cell_int r.Perf_runner.put_s_messages;
              Table.cell_int r.Perf_runner.put_s_suppressed;
              Table.cell_int r.Perf_runner.xg_to_host_bytes;
              Table.cell_pct share;
            ])
        [ false; true ])
    [
      (Config.Hammer, Config.Xg_one_level Config.Transactional);
      (Config.Hammer, Config.Xg_two_level Config.Transactional);
      (Config.Mesi, Config.Xg_one_level Config.Transactional);
    ];
  { id = "e4"; title = "E4 (PutS overhead)"; tables = [ table ] }

(* ---------- E5 ---------- *)

let e5_storage ?(quick = false) () =
  let table =
    Table.create ~title:"E5: guard storage, Full-State vs Transactional (measured peak)"
      ~columns:
        [ "Accel cache"; "blocks"; "full-state peak"; "transactional peak"; "ratio" ]
  in
  let sizes = if quick then [ (16, 4) ] else [ (8, 4); (16, 4); (32, 4); (64, 8) ] in
  List.iter
    (fun (sets, ways) ->
      let measure variant =
        let base = { Config.default with Config.accel_sets = sets; Config.accel_ways = ways } in
        let cfg = Config.make ~base Config.Hammer (Config.Xg_one_level variant) in
        let r = ref 0 in
        let sys = System.build cfg in
        let seq =
          Sequencer.create ~engine:sys.System.engine ~name:"e5"
            ~port:sys.System.accel_ports.(0) ()
        in
        let blocks = 4 * sets * ways in
        for i = 0 to blocks - 1 do
          Sequencer.request seq
            (Access.store (Addr.block i) (Data.token i))
            ~on_complete:(fun _ ~latency:_ -> ())
        done;
        ignore (Engine.run sys.System.engine);
        (match sys.System.xg_core with
        | Some core -> r := Xg.Xg_core.peak_storage_bits core
        | None -> ());
        !r
      in
      let full = measure Config.Full_state in
      let trans = measure Config.Transactional in
      Table.add_row table
        [
          Printf.sprintf "%dx%d" sets ways;
          Table.cell_int (sets * ways);
          Printf.sprintf "%d bits (%.1f KB)" full (float_of_int full /. 8192.0);
          Printf.sprintf "%d bits (%.2f KB)" trans (float_of_int trans /. 8192.0);
          Table.cell_ratio (float_of_int full /. float_of_int (max trans 1));
        ])
    sizes;
  (* The paper's analytic example: 256 kB accelerator cache, 64 B blocks,
     "this storage is around 16 kB" of tags. *)
  let analytic =
    Table.create ~title:"E5 (analytic, paper's example): Full-State storage for a 256 kB cache"
      ~columns:[ "Quantity"; "Value" ]
  in
  let blocks = 256 * 1024 / 64 in
  let tag_bits = 34 and state_bits = 2 in
  let tag_bytes = blocks * tag_bits / 8 in
  let full_bytes = blocks * (tag_bits + state_bits) / 8 in
  Table.add_row analytic [ "accelerator cache"; "256 kB, 64 B blocks" ];
  Table.add_row analytic [ "tracked blocks"; Table.cell_int blocks ];
  Table.add_row analytic
    [ "tag storage"; Printf.sprintf "%.1f kB (paper: ~16 kB)" (float_of_int tag_bytes /. 1024.) ];
  Table.add_row analytic
    [ "tags + state"; Printf.sprintf "%.1f kB" (float_of_int full_bytes /. 1024.) ];
  { id = "e5"; title = "E5 (storage)"; tables = [ table; analytic ] }

(* ---------- E6 ---------- *)

let e6_timeout ?(quick = false) () =
  let timeouts = if quick then [ 500; 4000 ] else [ 250; 500; 1000; 2000; 4000 ] in
  let table =
    Table.create
      ~title:
        "E6: CPU request latency with a mute accelerator owner (bounded by the guard timeout)"
      ~columns:[ "XG timeout"; "cpu latency (mute accel)"; "violations"; "host live" ]
  in
  List.iter
    (fun timeout ->
      let cfg = Config.make Config.Hammer (Config.Xg_one_level Config.Full_state) in
      let cfg = { cfg with Config.xg_timeout = timeout } in
      let sys = System.build ~attach_accel:false cfg in
      let link = Option.get sys.System.accel_link in
      let self = Option.get sys.System.accel_node_on_link in
      let xgn = Option.get sys.System.xg_node_on_link in
      let send msg = Xg.Xg_iface.Link.send link ~src:self ~dst:xgn ~size:8 msg in
      (* The accelerator acquires M, then goes mute. *)
      Xg.Xg_iface.Link.register link self (fun ~src:_ _ -> ());
      send (Xg.Xg_iface.To_xg_req { addr = Addr.block 0; req = Xg.Xg_iface.Get_m });
      ignore (Engine.run sys.System.engine);
      let start = Engine.now sys.System.engine in
      let done_at = ref 0 in
      let port = sys.System.cpu_ports.(0) in
      ignore
        (port.Access.issue
           (Access.store (Addr.block 0) (Data.token 9))
           ~on_done:(fun _ -> done_at := Engine.now sys.System.engine));
      ignore (Engine.run sys.System.engine);
      let live = !done_at > 0 in
      Table.add_row table
        [
          Table.cell_int timeout;
          (if live then Table.cell_int (!done_at - start) else "never");
          Table.cell_int (Xg.Os_model.error_count sys.System.os);
          (if live then "yes" else "NO");
        ])
    timeouts;
  { id = "e6"; title = "E6 (timeout recovery)"; tables = [ table ] }

(* ---------- E7 ---------- *)

let e7_rate_limit ?(quick = false) () =
  let steps = if quick then 300 else 800 in
  (* A latency-sensitive CPU loop, measured while the accelerator floods the
     host with (legitimate) requests. *)
  let measure ~flood ~limited =
    (* A finite directory pipeline is the shared resource the flood consumes
       (paper: "consuming bandwidth, directory entries, or other resources"). *)
    let base = { Config.default with Config.dir_occupancy = 6 } in
    let base =
      if limited then { base with Config.rate_limit = Some (0.02, 4) } else base
    in
    let cfg = Config.make ~base Config.Hammer (Config.Xg_one_level Config.Transactional) in
    let sys = System.build cfg in
    let cpu_seq =
      Sequencer.create ~engine:sys.System.engine ~name:"victim"
        ~port:sys.System.cpu_ports.(0) ()
    in
    let rng = Rng.create ~seed:9 in
    (* CPU pointer-chases its private region. *)
    let remaining = ref steps in
    let rec next () =
      if !remaining > 0 then begin
        decr remaining;
        Sequencer.request cpu_seq
          (Access.load (Addr.block (2048 + Rng.int rng 64)))
          ~on_complete:(fun _ ~latency:_ -> next ())
      end
    in
    next ();
    if flood then begin
      let accel_seq =
        Sequencer.create ~engine:sys.System.engine ~name:"flood"
          ~port:sys.System.accel_ports.(0) ~max_outstanding:16 ()
      in
      (* An open-ended stream of distinct-address reads at line rate. *)
      let issued = ref 0 in
      let rec flood_more () =
        if !remaining > 0 && !issued < 1_000_000 then begin
          incr issued;
          Sequencer.request accel_seq
            (Access.load (Addr.block (!issued mod 4096)))
            ~on_complete:(fun _ ~latency:_ -> flood_more ())
        end
      in
      for _ = 1 to 16 do
        flood_more ()
      done
    end;
    ignore (Engine.run ~max_events:100_000_000 sys.System.engine);
    Xguard_stats.Histogram.mean (Sequencer.latency cpu_seq)
  in
  let table =
    Table.create ~title:"E7: host process latency under an accelerator request flood"
      ~columns:[ "Scenario"; "cpu mean latency"; "slowdown" ]
  in
  let alone = measure ~flood:false ~limited:false in
  let flooded = measure ~flood:true ~limited:false in
  let protected_ = measure ~flood:true ~limited:true in
  let row name v =
    Table.add_row table [ name; Table.cell_float v; Table.cell_ratio (v /. alone) ]
  in
  row "no accelerator traffic" alone;
  row "flood, no rate limit" flooded;
  row "flood, rate limit 0.02 req/cycle" protected_;
  { id = "e7"; title = "E7 (rate limiting)"; tables = [ table ] }

(* ---------- E8 ---------- *)

let e8_block_merge () =
  let table =
    Table.create ~title:"E8: block-size translation (merge/split at the guard)"
      ~columns:
        [ "accel:host block ratio"; "accel ops"; "host transactions"; "amplification"; "data ok" ]
  in
  List.iter
    (fun ratio ->
      let engine = Engine.create () in
      let memory = Memory_model.create () in
      let backing =
        {
          Xg.Block_merge.get =
            (fun addr ~excl:_ ~on_grant ->
              Engine.schedule engine ~delay:10 (fun () -> on_grant (Memory_model.read memory addr)));
          Xg.Block_merge.put = (fun addr data -> Memory_model.write memory addr data);
        }
      in
      let bm = Xg.Block_merge.create ~engine ~ratio ~backing () in
      let lines = 64 in
      let ok = ref true in
      (* Write every line through the merge layer, then read back. *)
      for line = 0 to lines - 1 do
        Xg.Block_merge.get bm ~line ~excl:true ~on_grant:(fun _ ->
            Xg.Block_merge.put bm ~line
              (Array.init ratio (fun i -> Data.token ((line * 100) + i))))
      done;
      ignore (Engine.run engine);
      for line = 0 to lines - 1 do
        Xg.Block_merge.get bm ~line ~excl:false ~on_grant:(fun g ->
            match g with
            | Xg.Block_merge.Merged_s parts | Xg.Block_merge.Merged_e parts
            | Xg.Block_merge.Merged_m parts ->
                Array.iteri
                  (fun i d -> if not (Data.equal d (Data.token ((line * 100) + i))) then ok := false)
                  parts)
      done;
      ignore (Engine.run engine);
      let accel_ops = 3 * lines in
      let host = Xg.Block_merge.host_transactions bm in
      Table.add_row table
        [
          Printf.sprintf "%d:1" ratio;
          Table.cell_int accel_ops;
          Table.cell_int host;
          Table.cell_ratio (float_of_int host /. float_of_int accel_ops);
          (if !ok then "yes" else "NO");
        ])
    [ 1; 2; 4; 8 ];
  { id = "e8"; title = "E8 (block-size translation)"; tables = [ table ] }

(* ---------- A1 ---------- *)

let a1_link_ordering ?(quick = false) () =
  let seeds = if quick then [ 1; 2; 3 ] else [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let table =
    Table.create
      ~title:"A1: the ordered-link requirement is load-bearing (unordered link misbehaves)"
      ~columns:[ "Link"; "runs"; "data errors"; "deadlocks"; "violations"; "crashes" ]
  in
  List.iter
    (fun ordered ->
      let errors = ref 0 and deadlocks = ref 0 and violations = ref 0 and crashes = ref 0 in
      List.iter
        (fun seed ->
          let base = { Config.default with Config.seed = seed; Config.link_ordered = ordered } in
          let cfg =
            Config.stress_sized
              (Config.make ~base Config.Hammer (Config.Xg_one_level Config.Full_state))
          in
          try
            let sys = System.build cfg in
            let ports = Array.append sys.System.cpu_ports sys.System.accel_ports in
            let o =
              Random_tester.run ~engine:sys.System.engine
                ~rng:(Rng.create ~seed:(seed * 7 + 1))
                ~ports
                ~addresses:(Array.init 6 Addr.block)
                ~ops_per_core:300 ()
            in
            errors := !errors + o.Random_tester.data_errors;
            if o.Random_tester.deadlocked then incr deadlocks;
            violations := !violations + Xg.Os_model.error_count sys.System.os
          with _ -> incr crashes)
        seeds;
      Table.add_row table
        [
          (if ordered then "ordered (required)" else "unordered (ablated)");
          Table.cell_int (List.length seeds);
          Table.cell_int !errors;
          Table.cell_int !deadlocks;
          Table.cell_int !violations;
          Table.cell_int !crashes;
        ])
    [ true; false ];
  { id = "a1"; title = "A1 (link ordering ablation)"; tables = [ table ] }

(* ---------- A2 ---------- *)

let a2_snoop_filtering ?(quick = false) () =
  let sweep = if quick then W.shared_sweep ~length:128 () else W.shared_sweep () in
  let pc =
    if quick then W.producer_consumer ~buffer_blocks:16 ~rounds:12 ()
    else W.producer_consumer ()
  in
  let table =
    Table.create
      ~title:"A2: snoops the guard answers without an accelerator round-trip"
      ~columns:
        [ "Configuration"; "workload"; "fast-path answers"; "round-trips"; "fast-path share" ]
  in
  List.iter
    (fun w ->
      List.iter
        (fun cfg ->
          let r = Perf_runner.run cfg w in
          let fast = r.Perf_runner.snoop_fast_path and slow = r.Perf_runner.snoop_roundtrip in
          Table.add_row table
            [
              Config.name cfg;
              w.W.name;
              Table.cell_int fast;
              Table.cell_int slow;
              (if fast + slow = 0 then "-"
               else Table.cell_pct (float_of_int fast /. float_of_int (fast + slow)));
            ])
        [
          Config.make Config.Hammer (Config.Xg_one_level Config.Full_state);
          Config.make Config.Hammer (Config.Xg_one_level Config.Transactional);
          Config.make Config.Mesi (Config.Xg_one_level Config.Full_state);
          Config.make Config.Mesi (Config.Xg_one_level Config.Transactional);
        ];
      Table.add_separator table)
    [ sweep; pc ];
  { id = "a2"; title = "A2 (snoop filtering)"; tables = [ table ] }

(* ---------- E9 ---------- *)

type isolation_outcome = {
  iso_quarantined : bool;
  iso_baseline_cycles : int;
  iso_faulted_cycles : int;
  iso_neighbor_ops : int;
  iso_data_errors : int;
  iso_deadlocked : bool;
  iso_slowdown : float;
  iso_rejoins : int;
      (** completed reset handshakes on the victim guard (always 0 without a
          recovery policy) *)
}

(* The N=3 mixed cached/uncached topology used by both E9b and the isolation
   regression in test/test_safety.ml.  [a0] is the victim; [nic0] and [dsp0]
   are the neighbors whose throughput must survive its quarantine. *)
let isolation_topology () =
  match
    Topology.of_string
      "hammer:shards=2;a0=trans,cached;nic0=full,uncached,lat=12;dsp0=trans,cached,lat=6"
  with
  | Ok t -> t
  | Error e -> invalid_arg e

let measure_isolation ?(ops = 250) ?(seed = 1) ?recovery () =
  let module Net = Xguard_network.Network in
  let module Xgi = Xg.Xg_iface in
  let victim_block = Addr.block 100 (* outside the tester's address pool *) in
  let run ~kill =
    let topo = isolation_topology () in
    let topo =
      (* Reliability layer on for the victim's link (zero probabilistic
         injection — only the scripted wire cut below can fault). *)
      {
        topo with
        Topology.accels =
          List.mapi
            (fun i a ->
              if i = 0 then { a with Topology.faults = Some Net.Fault.zero }
              else a)
            topo.Topology.accels;
      }
    in
    let cfg =
      {
        (Config.of_topology topo) with
        Config.seed;
        link_retry_timeout = 16;
        link_max_retries = 2;
        quarantine_after = 2;
        recovery;
      }
    in
    (* Guard 0 stays bare; a minimal scripted endpoint on its link
       acknowledges invalidations while the wire is up. *)
    let sys = System.build ~attach_accel:false cfg in
    let link = Option.get sys.System.accel_link in
    let self = Option.get sys.System.accel_node_on_link in
    let xg = Option.get sys.System.xg_node_on_link in
    let send msg =
      Xgi.Link.send link ~src:self ~dst:xg ~size:(Xgi.msg_size msg) msg
    in
    Xgi.Link.register link self (fun ~src:_ msg ->
        match msg with
        | Xgi.To_accel_req { addr; req = Xgi.Invalidate } ->
            send (Xgi.To_xg_resp { addr; resp = Xgi.Inv_ack })
        | _ -> ());
    if kill then begin
      (* The victim legitimately owns a block, then its wire goes dark.  A
         CPU store to that block forces the guard's Invalidate onto the dead
         link; the retry ladder runs dry and the guard quarantines — all
         before the throughput measurement starts. *)
      send (Xgi.To_xg_req { addr = victim_block; req = Xgi.Get_m });
      ignore (Engine.run sys.System.engine);
      Xgi.Link.cut_wire link;
      let stored = ref false in
      let rec store tries =
        if tries > 500 || !stored then ()
        else if
          sys.System.cpu_ports.(0).Access.issue
            (Access.store victim_block (Data.token 1)) ~on_done:(fun _ ->
              stored := true)
        then ignore (Engine.run sys.System.engine)
        else begin
          ignore (Engine.run sys.System.engine);
          store (tries + 1)
        end
      in
      store 0;
      assert !stored
    end;
    (* Drive the CPUs and the neighbor guards' devices; the victim's port
       stays idle in both runs so the issued work is identical. *)
    let neighbor_ports =
      Array.concat
        (List.tl
           (List.map (fun g -> g.System.g_ports) (Array.to_list sys.System.guards)))
    in
    let ports = Array.append sys.System.cpu_ports neighbor_ports in
    let start = Engine.now sys.System.engine in
    let o =
      Random_tester.run ~engine:sys.System.engine
        ~rng:(Rng.create ~seed:(seed * 7 + 1))
        ~ports
        ~addresses:(Array.init 6 Addr.block)
        ~ops_per_core:ops ()
    in
    let neighbor_ops =
      let n_cpus = Array.length sys.System.cpu_ports in
      Array.fold_left ( + ) 0
        (Array.sub o.Random_tester.ops_per_port n_cpus
           (Array.length o.Random_tester.ops_per_port - n_cpus))
    in
    let rejoins =
      Array.fold_left
        (fun acc g -> acc + Xg.Xg_core.rejoins g.System.g_core)
        0 sys.System.guards
    in
    (o, o.Random_tester.cycles - start, neighbor_ops, sys.System.quarantined (), rejoins)
  in
  let base, base_cycles, _, _, _ = run ~kill:false in
  let faulted, faulted_cycles, neighbor_ops, quarantined, rejoins = run ~kill:true in
  {
    iso_quarantined = quarantined;
    iso_baseline_cycles = base_cycles;
    iso_faulted_cycles = faulted_cycles;
    iso_neighbor_ops = neighbor_ops;
    iso_data_errors =
      base.Random_tester.data_errors + faulted.Random_tester.data_errors;
    iso_deadlocked =
      base.Random_tester.deadlocked || faulted.Random_tester.deadlocked;
    iso_slowdown = float_of_int faulted_cycles /. float_of_int (max 1 base_cycles);
    iso_rejoins = rejoins;
  }

let e9_topology ?(quick = false) () =
  let seeds = if quick then [ 1 ] else [ 1; 2; 3 ] in
  let ops = if quick then 150 else 400 in
  let sweep =
    Table.create
      ~title:"E9a: symmetric topology size sweep (Hammer host, 2 directory shards)"
      ~columns:
        [
          "Topology";
          "guards";
          "driven ports";
          "ops";
          "data errors";
          "deadlocks";
          "violations";
          "cycles";
        ]
  in
  List.iter
    (fun n ->
      let topo = Topology.symmetric ~shards:2 n in
      let total_ops = ref 0
      and errors = ref 0
      and deadlocks = ref 0
      and violations = ref 0
      and cycles = ref 0
      and nports = ref 0 in
      List.iter
        (fun seed ->
          let cfg = Config.stress_sized { (Config.of_topology topo) with Config.seed } in
          let sys = System.build cfg in
          let ports = Array.append sys.System.cpu_ports sys.System.accel_ports in
          nports := Array.length ports;
          let o =
            Random_tester.run ~engine:sys.System.engine
              ~rng:(Rng.create ~seed:(seed * 7 + 1))
              ~ports
              ~addresses:(Array.init 6 Addr.block)
              ~ops_per_core:ops ()
          in
          total_ops := !total_ops + o.Random_tester.ops_completed;
          errors := !errors + o.Random_tester.data_errors;
          if o.Random_tester.deadlocked then incr deadlocks;
          violations := !violations + Xg.Os_model.error_count sys.System.os;
          cycles := !cycles + o.Random_tester.cycles)
        seeds;
      Table.add_row sweep
        [
          Topology.name topo;
          Table.cell_int n;
          Table.cell_int !nports;
          Table.cell_int !total_ops;
          Table.cell_int !errors;
          Table.cell_int !deadlocks;
          Table.cell_int !violations;
          Table.cell_int !cycles;
        ])
    [ 1; 2; 3; 4 ];
  let iso = measure_isolation ~ops:(if quick then 120 else 250) () in
  let isolation =
    Table.create
      ~title:
        "E9b: neighbor throughput with guard a0 quarantined vs healthy (N=3 mixed topology)"
      ~columns:[ "metric"; "value" ]
  in
  List.iter (Table.add_row isolation)
    [
      [ "victim quarantined"; (if iso.iso_quarantined then "yes" else "NO") ];
      [ "neighbor device ops completed"; Table.cell_int iso.iso_neighbor_ops ];
      [ "baseline cycles (a0 healthy, idle)"; Table.cell_int iso.iso_baseline_cycles ];
      [ "cycles with a0 quarantined"; Table.cell_int iso.iso_faulted_cycles ];
      [ "slowdown"; Printf.sprintf "%.3fx" iso.iso_slowdown ];
      [ "data errors"; Table.cell_int iso.iso_data_errors ];
      [ "deadlocked"; (if iso.iso_deadlocked then "YES" else "no") ];
    ];
  { id = "e9"; title = "E9 (multi-guard topologies)"; tables = [ sweep; isolation ] }

(* ---------- E10 ---------- *)

type recovery_point = {
  rp_availability : float;  (** 1 - down_cycles / total cycles, guard 0 *)
  rp_mttr : float option;  (** down cycles per completed repair; None if none *)
  rp_quarantines : int;
  rp_rejoins : int;
  rp_permakilled : bool;
  rp_ops : int;
  rp_neighbor_ops : int;
  rp_data_errors : int;
  rp_deadlocked : bool;
  rp_cycles : int;  (** measured window (tester start to quiescence) *)
}

(* Availability measurement under a recovery policy: guard 0 runs bare with a
   well-behaved scripted sharer on a reliability-layer link.  Faults come from
   either a probabilistic [drop] rate (retry-ladder exhaustion) or scripted
   wire [cuts] at fixed cycles; the recovery policy resets the link and
   re-admits the script each time.  The script keeps a held-set so it always
   answers Invalidate with the protocol-correct response for its grant, never
   double-requests, and — mirroring a real hierarchy's reset flush — forgets
   everything when the guard resets the link. *)
let measure_recovery ~topo ~drop ~cuts ~ops ~ticks ~seed () =
  let module Net = Xguard_network.Network in
  let module Xgi = Xg.Xg_iface in
  let topo =
    {
      topo with
      Topology.accels =
        List.mapi
          (fun i a ->
            if i = 0 then
              { a with Topology.faults = Some { Net.Fault.zero with Net.Fault.drop } }
            else a)
          topo.Topology.accels;
    }
  in
  let cfg =
    {
      (Config.of_topology topo) with
      Config.seed;
      link_retry_timeout = 16;
      link_max_retries = 2;
      quarantine_after = 2;
      recovery =
        Some
          (Xg.Xg_core.make_recovery ~reset_delay:150 ~reset_timeout:32
             ~reset_attempts:6 ~probation_window:300 ~probation_rate:0.5
             ~probation_burst:4 ~probation_quarantine_after:2 ~permakill_after:64
             ());
    }
  in
  let sys = System.build ~attach_accel:false cfg in
  let link = Option.get sys.System.accel_link in
  let self = Option.get sys.System.accel_node_on_link in
  let xg = Option.get sys.System.xg_node_on_link in
  let send msg =
    Xgi.Link.send link ~src:self ~dst:xg ~size:(Xgi.msg_size msg) msg
  in
  let pool = Array.init 6 Addr.block in
  (* addr -> last grant; entries are provisional ([None]) from request time so
     a pending block is never re-requested (G1b). *)
  let held : (Addr.t, Xgi.xg_response option) Hashtbl.t = Hashtbl.create 16 in
  Xgi.Link.register link self (fun ~src:_ msg ->
      match msg with
      | Xgi.To_accel_req { addr; req = Xgi.Invalidate } ->
          let resp =
            match Hashtbl.find_opt held addr with
            | Some (Some (Xgi.Data_e d)) -> Xgi.Clean_wb d
            | Some (Some (Xgi.Data_m d)) -> Xgi.Dirty_wb d
            | _ -> Xgi.Inv_ack
          in
          Hashtbl.remove held addr;
          send (Xgi.To_xg_resp { addr; resp })
      | Xgi.To_accel_resp
          { addr; resp = (Xgi.Data_s _ | Xgi.Data_e _ | Xgi.Data_m _) as resp } ->
          Hashtbl.replace held addr (Some resp)
      | _ -> ());
  (* The guard's reset handler flushes a real hierarchy; the scripted
     sharer's equivalent is dropping everything it held (including stuck
     provisional entries whose requests died in quarantine). *)
  Xgi.Link.set_reset_handler link (fun () -> Hashtbl.reset held);
  let rec tick i =
    if i < ticks then begin
      (match Array.find_opt (fun a -> not (Hashtbl.mem held a)) pool with
      | Some a ->
          Hashtbl.replace held a None;
          send (Xgi.To_xg_req { addr = a; req = Xgi.Get_s })
      | None -> ());
      Engine.schedule sys.System.engine ~delay:30 (fun () -> tick (i + 1))
    end
  in
  tick 0;
  List.iter
    (fun at ->
      Engine.schedule sys.System.engine ~delay:at (fun () ->
          Xgi.Link.cut_wire link))
    cuts;
  let neighbor_ports =
    Array.concat
      (List.tl
         (List.map (fun g -> g.System.g_ports) (Array.to_list sys.System.guards)))
  in
  let ports = Array.append sys.System.cpu_ports neighbor_ports in
  let start = Engine.now sys.System.engine in
  let o =
    Random_tester.run ~engine:sys.System.engine
      ~rng:(Rng.create ~seed:(seed * 7 + 1))
      ~ports ~addresses:pool ~ops_per_core:ops ()
  in
  let core0 = sys.System.guards.(0).System.g_core in
  let now = Engine.now sys.System.engine in
  let down = Xg.Xg_core.down_cycles core0 ~now in
  let rejoins = Xg.Xg_core.rejoins core0 in
  let neighbor_ops =
    let n_cpus = Array.length sys.System.cpu_ports in
    Array.fold_left ( + ) 0
      (Array.sub o.Random_tester.ops_per_port n_cpus
         (Array.length o.Random_tester.ops_per_port - n_cpus))
  in
  {
    rp_availability = 1.0 -. (float_of_int down /. float_of_int (max 1 now));
    rp_mttr =
      (if rejoins > 0 then Some (float_of_int down /. float_of_int rejoins)
       else None);
    rp_quarantines = Xg.Xg_core.quarantine_count core0;
    rp_rejoins = rejoins;
    rp_permakilled = Xg.Xg_core.permakilled core0;
    rp_ops = o.Random_tester.ops_completed;
    rp_neighbor_ops = neighbor_ops;
    rp_data_errors = o.Random_tester.data_errors;
    rp_deadlocked = o.Random_tester.deadlocked;
    rp_cycles = o.Random_tester.cycles - start;
  }

let e10_recovery ?(quick = false) () =
  let ops = if quick then 80 else 200 in
  let ticks = if quick then 150 else 400 in
  let sizes = if quick then [ 1; 2 ] else [ 1; 2; 3 ] in
  let drops = if quick then [ 0.3 ] else [ 0.0; 0.3 ] in
  (* Two deterministic fault bursts per run, so every point sees outages even
     where the retry ladder absorbs the probabilistic drops; the drop rate
     then adds retry-exhaustion faults on top. *)
  let cuts = [ 1_500; 6_000 ] in
  let sweep =
    Table.create
      ~title:
        "E10a: availability and MTTR with recovery, swept over link drop rate \
         and topology size (two scripted fault bursts per run)"
      ~columns:
        [
          "guards";
          "drop";
          "quarantines";
          "rejoins";
          "permakilled";
          "availability";
          "MTTR";
          "ops";
          "data errors";
          "deadlocked";
        ]
  in
  List.iter
    (fun n ->
      List.iter
        (fun drop ->
          let p =
            measure_recovery
              ~topo:(Topology.symmetric ~shards:2 n)
              ~drop ~cuts ~ops ~ticks ~seed:1 ()
          in
          Table.add_row sweep
            [
              Table.cell_int n;
              Printf.sprintf "%.2f" drop;
              Table.cell_int p.rp_quarantines;
              Table.cell_int p.rp_rejoins;
              (if p.rp_permakilled then "YES" else "no");
              Table.cell_pct p.rp_availability;
              (match p.rp_mttr with
              | Some m -> Printf.sprintf "%.0f cyc" m
              | None -> "-");
              Table.cell_int p.rp_ops;
              Table.cell_int p.rp_data_errors;
              (if p.rp_deadlocked then "YES" else "no");
            ])
        drops)
    sizes;
  (* Directed lifecycle rows: rejoin-and-transact, permanent kill after
     repeated quarantines, and the tarpit tripping a hang budget strictly
     before the coarse G2c timeout. *)
  let lifecycle =
    Table.create ~title:"E10b: directed recovery lifecycle scenarios"
      ~columns:
        [
          "scenario";
          "detected";
          "rejoins";
          "permakilled";
          "budget trips";
          "G2c timeouts";
          "accel live after";
          "host live";
        ]
  in
  let scen_cfg = Config.make Config.Hammer (Config.Xg_one_level Config.Transactional) in
  List.iter
    (fun s ->
      let o = Fault_scenarios.run scen_cfg s in
      Table.add_row lifecycle
        [
          Fault_scenarios.scenario_name s;
          (if o.Fault_scenarios.detected then "yes" else "NO");
          Table.cell_int o.Fault_scenarios.rejoins;
          (if o.Fault_scenarios.permakilled then "yes" else "no");
          Table.cell_int o.Fault_scenarios.budget_trips;
          Table.cell_int o.Fault_scenarios.g2c_timeouts;
          (if o.Fault_scenarios.accel_live_after then "yes" else "no");
          (if o.Fault_scenarios.host_live then "yes" else "NO");
        ])
    [
      Fault_scenarios.Recovery_rejoin;
      Fault_scenarios.Repeated_quarantine_permakill;
      Fault_scenarios.Tarpit_budget;
    ];
  (* E9b's neighbor-isolation bound, re-asserted while the victim is actually
     cycling through quarantine -> reset -> probation mid-measurement: the
     wire is cut twice during the measured window on the same N=3 mixed
     topology, and neighbor throughput is compared against an identical run
     with no cuts. *)
  let iso_ops = if quick then 100 else 220 in
  let iso_ticks = if quick then 120 else 300 in
  let base =
    measure_recovery ~topo:(isolation_topology ()) ~drop:0.0 ~cuts:[]
      ~ops:iso_ops ~ticks:iso_ticks ~seed:2 ()
  in
  let faulted =
    measure_recovery ~topo:(isolation_topology ()) ~drop:0.0
      ~cuts:[ 800; 4000 ] ~ops:iso_ops ~ticks:iso_ticks ~seed:2 ()
  in
  let slowdown =
    float_of_int faulted.rp_cycles /. float_of_int (max 1 base.rp_cycles)
  in
  let isolation =
    Table.create
      ~title:
        "E10c: E9b isolation bound during recovery (wire cut twice \
         mid-measurement, N=3 mixed topology)"
      ~columns:[ "metric"; "value" ]
  in
  List.iter (Table.add_row isolation)
    [
      [ "victim quarantines"; Table.cell_int faulted.rp_quarantines ];
      [ "victim rejoins"; Table.cell_int faulted.rp_rejoins ];
      [ "baseline cycles (no cuts)"; Table.cell_int base.rp_cycles ];
      [ "cycles with recovery cycling"; Table.cell_int faulted.rp_cycles ];
      [ "slowdown"; Printf.sprintf "%.3fx" slowdown ];
      [
        "neighbor device ops (base / recovery)";
        Printf.sprintf "%d / %d" base.rp_neighbor_ops faulted.rp_neighbor_ops;
      ];
      [
        "data errors";
        Table.cell_int (base.rp_data_errors + faulted.rp_data_errors);
      ];
      [
        "deadlocked";
        (if base.rp_deadlocked || faulted.rp_deadlocked then "YES" else "no");
      ];
    ];
  {
    id = "e10";
    title = "E10 (recovery, availability & MTTR)";
    tables = [ sweep; lifecycle; isolation ];
  }

(* ---------- E11: SLO health across the matrix; tarpit tenant isolation ----- *)

module Spans = Xguard_obs.Spans
module Metrics = Xguard_obs.Metrics
module Slo = Xguard_obs.Slo

(* Run one stress workload with the telemetry stack armed and judge the
   given objectives against exactly what the metrics layer recorded. *)
let e11_measure ~ops ~seed ~objectives cfg =
  let sr = Spans.create () in
  let mr = Metrics.create () in
  Spans.with_armed sr (fun () ->
      Metrics.with_armed mr (fun () ->
          let sys = System.build cfg in
          let ports =
            Array.append sys.System.cpu_ports sys.System.accel_ports
          in
          let o =
            Random_tester.run ~engine:sys.System.engine
              ~rng:(Rng.create ~seed:(seed * 7 + 1))
              ~ports
              ~addresses:(Array.init 6 Addr.block)
              ~ops_per_core:ops ()
          in
          let now = Engine.now sys.System.engine in
          Array.iter
            (fun (g : System.guard) ->
              let guard =
                if g.System.g_id = "" then "xg" else "xg." ^ g.System.g_id
              in
              Metrics.note_avail ~guard
                ~down:(Xg.Xg_core.down_cycles g.System.g_core ~now)
                ~now)
            sys.System.guards;
          ignore o));
  let msum = Metrics.summary ~label:(Config.name cfg) mr in
  let verdicts =
    Slo.evaluate objectives
      ~span_cells:(Spans.Summary.cells (Spans.summary sr))
      ~guard_hists:(Metrics.Summary.hists msum)
      ~avail:(Metrics.Summary.avails msum)
  in
  (Metrics.Summary.samples msum, verdicts)

let e11_slo ?(quick = false) () =
  let module Xgi = Xg.Xg_iface in
  let parse spec =
    match Slo.parse spec with Ok o -> o | Error e -> invalid_arg e
  in
  (* E11a: one short stress run per configuration of the full matrix, each
     judged against the same objective set.  Guard decision latency and
     availability hold everywhere; the end-to-end bound is deliberately
     generous — this table is the "all tenants healthy" baseline E11b breaks. *)
  let ops = if quick then 100 else 250 in
  let objectives =
    parse "xg.decide:p99<=400;seq.e2e:p99<=60000;avail>=0.95"
  in
  let find_measured verdicts prefix =
    match
      List.find_opt
        (fun v ->
          String.length v.Slo.v_objective >= String.length prefix
          && String.sub v.Slo.v_objective 0 (String.length prefix) = prefix)
        verdicts
    with
    | Some v -> v.Slo.v_measured
    | None -> "-"
  in
  let sweep =
    Table.create
      ~title:
        "E11a: SLO verdicts per configuration (stress workload; \
         xg.decide:p99<=400, seq.e2e:p99<=60000, avail>=0.95)"
      ~columns:
        [ "Configuration"; "samples"; "xg.decide p99"; "seq.e2e p99";
          "availability"; "slo" ]
  in
  List.iter
    (fun cfg ->
      let cfg = Config.stress_sized { cfg with Config.seed = 7 } in
      let samples, verdicts = e11_measure ~ops ~seed:7 ~objectives cfg in
      Table.add_row sweep
        [
          Config.name cfg;
          Table.cell_int samples;
          find_measured verdicts "xg.decide";
          find_measured verdicts "seq.e2e";
          find_measured verdicts "avail";
          (if Slo.passed verdicts then "PASS" else "FAIL");
        ])
    (Config.all_configurations ());
  (* E11b: three tenants behind their own guards; tenant [a0] is a tarpit —
     it answers every Invalidate correctly but hundreds of cycles late, then
     immediately re-acquires the block so invalidation traffic never dries
     up.  The per-guard inv.roundtrip SLO must fail for the tarpit alone:
     the guards pin the damage to the slow tenant, the neighbors' verdicts
     stay green (the observability face of the paper's isolation claim). *)
  let tarpit = 900 in
  let inv_bound = 64 in
  let t_ops = if quick then 120 else 300 in
  let topo =
    match
      Topology.of_string
        "hammer:shards=2;a0=trans,cached;nic0=full,uncached,lat=12;dsp0=trans,cached,lat=6"
    with
    | Ok t -> t
    | Error e -> invalid_arg e
  in
  let cfg = { (Config.of_topology topo) with Config.seed = 11 } in
  let sr = Spans.create () in
  let mr = Metrics.create () in
  Spans.with_armed sr (fun () ->
      Metrics.with_armed mr (fun () ->
          (* Guard 0's accelerator stack stays unattached; a scripted tarpit
             endpoint sits on its link instead. *)
          let sys = System.build ~attach_accel:false cfg in
          let link = Option.get sys.System.accel_link in
          let self = Option.get sys.System.accel_node_on_link in
          let xg = Option.get sys.System.xg_node_on_link in
          let send msg =
            Xgi.Link.send link ~src:self ~dst:xg ~size:(Xgi.msg_size msg) msg
          in
          Xgi.Link.register link self (fun ~src:_ msg ->
              match msg with
              | Xgi.To_accel_req { addr; req = Xgi.Invalidate } ->
                  Engine.schedule sys.System.engine ~delay:tarpit (fun () ->
                      send (Xgi.To_xg_resp { addr; resp = Xgi.Inv_ack });
                      (* Re-own the block so the next host touch invalidates
                         the tarpit again. *)
                      send (Xgi.To_xg_req { addr; req = Xgi.Get_m }))
              | _ -> ());
          (* Seed the tarpit's working set: it grabs half the tester pool. *)
          for b = 0 to 2 do
            send (Xgi.To_xg_req { addr = Addr.block b; req = Xgi.Get_m })
          done;
          let neighbor_ports =
            Array.concat
              (List.tl
                 (List.map
                    (fun g -> g.System.g_ports)
                    (Array.to_list sys.System.guards)))
          in
          let ports = Array.append sys.System.cpu_ports neighbor_ports in
          let o =
            Random_tester.run ~engine:sys.System.engine
              ~rng:(Rng.create ~seed:(11 * 7 + 1))
              ~ports
              ~addresses:(Array.init 6 Addr.block)
              ~ops_per_core:t_ops ()
          in
          ignore o));
  let msum = Metrics.summary ~label:"tarpit topology" mr in
  let verdicts =
    Slo.evaluate
      (parse (Printf.sprintf "inv.roundtrip:p99<=%d" inv_bound))
      ~span_cells:[]
      ~guard_hists:(Metrics.Summary.hists msum)
      ~avail:(Metrics.Summary.avails msum)
  in
  let tarpit_table =
    Slo.to_table
      ~title:
        (Printf.sprintf
           "E11b: per-guard inv.roundtrip:p99<=%d on a 3-tenant topology — \
            tenant a0 acks invalidations %d cycles late"
           inv_bound tarpit)
      verdicts
  in
  { id = "e11"; title = "E11 (SLO health & tarpit-tenant attribution)";
    tables = [ sweep; tarpit_table ] }

(* ---------- registry ---------- *)

let all ?(quick = false) () =
  [
    t1_transition_table ();
    f1_guarantees ();
    f2_organizations ~quick ();
    e1_stress ~quick ();
    e2_fuzz ~quick ();
    e3_performance ~quick ();
    e4_puts_overhead ~quick ();
    e5_storage ~quick ();
    e6_timeout ~quick ();
    e7_rate_limit ~quick ();
    e8_block_merge ();
    e9_topology ~quick ();
    e10_recovery ~quick ();
    e11_slo ~quick ();
    a1_link_ordering ~quick ();
    a2_snoop_filtering ~quick ();
  ]

let ids =
  [ "t1"; "f1"; "f2"; "e1"; "e2"; "e3"; "e4"; "e5"; "e6"; "e7"; "e8"; "e9"; "e10";
    "e11"; "a1"; "a2" ]

let by_id = function
  | "t1" -> Some (fun ?quick () -> ignore quick; t1_transition_table ())
  | "f1" -> Some (fun ?quick () -> ignore quick; f1_guarantees ())
  | "f2" -> Some (fun ?quick () -> f2_organizations ?quick ())
  | "e1" -> Some (fun ?quick () -> e1_stress ?quick ())
  | "e2" -> Some (fun ?quick () -> e2_fuzz ?quick ())
  | "e3" -> Some (fun ?quick () -> e3_performance ?quick ())
  | "e4" -> Some (fun ?quick () -> e4_puts_overhead ?quick ())
  | "e5" -> Some (fun ?quick () -> e5_storage ?quick ())
  | "e6" -> Some (fun ?quick () -> e6_timeout ?quick ())
  | "e7" -> Some (fun ?quick () -> e7_rate_limit ?quick ())
  | "e8" -> Some (fun ?quick () -> ignore quick; e8_block_merge ())
  | "e9" -> Some (fun ?quick () -> e9_topology ?quick ())
  | "e10" -> Some (fun ?quick () -> e10_recovery ?quick ())
  | "e11" -> Some (fun ?quick () -> e11_slo ?quick ())
  | "a1" -> Some (fun ?quick () -> a1_link_ordering ?quick ())
  | "a2" -> Some (fun ?quick () -> a2_snoop_filtering ?quick ())
  | _ -> None
