(* Command-line driver for the Crossing Guard reproduction.

   Subcommands:
     run      — run a workload on one configuration and print its statistics
     stress   — random coherence stress test (paper §4.1)
     fuzz     — bombard the guard with a pathological accelerator (paper §4)
     campaign — sharded stress/fuzz sweep over configurations × seeds
     report   — regenerate a reproduced table/figure (same as bench/main.exe)
     list     — enumerate configurations, workloads and experiments

   run/stress/fuzz accept --trace (arm the protocol event ring buffer and
   dump the per-address trail plus replay seed on failure), --trace-out FILE
   (write that trail to a file) and, for stress/fuzz/campaign, --coverage
   (print the per-controller state x event transition-coverage matrices).

   stress, fuzz and campaign accept -j N to fan their independent runs out
   over N domains (Xguard_parallel.Pool).  Results are merged in job order,
   so the output is byte-identical for any -j; only wall-clock changes.
   --trace requires -j 1 (the trace ring buffer is armed process-wide).
*)

open Cmdliner

module Config = Xguard_harness.Config
module System = Xguard_harness.System
module Tester = Xguard_harness.Random_tester
module Fuzz = Xguard_harness.Fuzz_tester
module Perf = Xguard_harness.Perf_runner
module Experiments = Xguard_harness.Experiments
module W = Xguard_workload.Workload
module Rng = Xguard_sim.Rng
module Xg = Xguard_xg
module Trace = Xguard_trace.Trace
module Coverage = Xguard_trace.Coverage
module Pool = Xguard_parallel.Pool
module Campaign = Xguard_harness.Campaign
module Pdes = Xguard_harness.Pdes
module Network = Xguard_network.Network
module Spans = Xguard_obs.Spans
module Perfetto = Xguard_obs.Perfetto
module Metrics = Xguard_obs.Metrics
module Slo = Xguard_obs.Slo
module Watchdog = Xguard_obs.Watchdog

let find_config name =
  List.find_opt (fun c -> Config.name c = name) (Config.all_configurations ())

let config_names = List.map Config.name (Config.all_configurations ())

let find_workload name = List.find_opt (fun w -> w.W.name = name) (W.all ())

let config_arg =
  let doc =
    "System configuration, one of: " ^ String.concat ", " config_names ^ "."
  in
  Arg.(value & opt string "hammer/xg-trans-1lvl" & info [ "c"; "config" ] ~docv:"CONFIG" ~doc)

let seed_arg =
  Arg.(value & opt int 42 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let with_config name seed f =
  match find_config name with
  | None ->
      Printf.eprintf "unknown configuration %S\nknown: %s\n" name
        (String.concat ", " config_names);
      exit 1
  | Some cfg -> f { cfg with Config.seed }

(* ---- multi-accelerator topologies ---- *)

module Topology = Xguard_harness.Topology

let topology_arg =
  Arg.(value & opt (some string) None
       & info [ "topology" ] ~docv:"SPEC"
           ~doc:"Build a multi-accelerator, multi-guard system instead of a \
                 named configuration: \
                 $(b,HOST[:shards=N];ID=ATTR,...;ID=ATTR,...) — e.g. \
                 $(b,hammer:shards=2;gpu0=trans,cached;nic0=full,uncached,lat=12). \
                 See docs/TOPOLOGY.md.  Overrides $(b,--config).")

let parse_topology spec =
  match Topology.of_string spec with
  | Ok topo -> topo
  | Error e ->
      Printf.eprintf "bad --topology %S: %s\n" spec e;
      exit 1

(* [--topology] takes precedence over [--config]; both paths deliver one
   Config.t, so everything downstream is topology-agnostic. *)
let with_system_config ~topology name seed f =
  match topology with
  | Some spec -> f { (Config.of_topology (parse_topology spec)) with Config.seed }
  | None -> with_config name seed f

(* ---- tracing & coverage plumbing ---- *)

let trace_flag =
  Arg.(value & flag
       & info [ "trace" ]
           ~doc:"Arm the protocol event ring buffer; on failure the event trail \
                 (and the seed that replays it) is dumped.")

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write dumped event trails to $(docv) instead of stdout (implies $(b,--trace)).")

let coverage_flag =
  Arg.(value & flag
       & info [ "coverage" ]
           ~doc:"Print per-controller (state x event) transition-coverage matrices.")

let make_trace ~trace ~trace_out =
  if trace || trace_out <> None then Some (Trace.create ~capacity:8192 ()) else None

(* ---- transaction spans (run/stress/fuzz) ---- *)

let spans_flag =
  Arg.(value & flag
       & info [ "spans" ]
           ~doc:"Arm the transaction span layer: per-segment latency-attribution \
                 tables (p50/p95/p99/max per transaction type) are appended to \
                 the report.")

let spans_out_arg =
  Arg.(value & opt (some string) None
       & info [ "spans-out" ] ~docv:"FILE"
           ~doc:"Write the span timeline and sampler series as Chrome/Perfetto \
                 trace-event JSON to $(docv) (implies $(b,--spans)).")

(* One recorder per pool job, armed on whichever domain runs it; recorders
   come back with the results, summaries merge in job order, so span output
   is byte-identical for any -j. *)
let make_recorder ~spans ~spans_out =
  if spans || spans_out <> None then
    Some (Spans.create ~timeline:(spans_out <> None) ())
  else None

let with_spans rec_ f = match rec_ with None -> f () | Some r -> Spans.with_armed r f

let print_span_summary sum =
  match Spans.Summary.attribution_table sum with
  | None -> ()
  | Some t ->
      print_string (Xguard_stats.Table.to_string t);
      print_newline ();
      let r = Spans.Summary.replaced sum and d = Spans.Summary.dropped sum in
      if r > 0 || d > 0 then
        Printf.printf "spans: %d crossings replaced, %d timeline/sample entries dropped\n" r d

let emit_spans_out ~spans_out recs =
  match spans_out with
  | None -> ()
  | Some file ->
      Perfetto.write_file file recs;
      Printf.printf "span timeline written to %s\n" file

(* ---- streaming metrics, SLOs and the watchdog (run/stress/fuzz/campaign) ---- *)

type metrics_opts = {
  m_out : string option;
  m_prom : string option;
  m_slo : string option;
  m_watchdog : Watchdog.config option;
}

let metrics_on m =
  m.m_out <> None || m.m_prom <> None || m.m_slo <> None || m.m_watchdog <> None

let metrics_term =
  let out =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Stream periodic telemetry samples (counter deltas, gauges, \
                   span quantiles, per-guard latency histograms, availability) \
                   as xguard-metrics-v1 JSONL to $(docv).  Byte-identical for \
                   any $(b,-j) / $(b,--sim-j).  Arms the span layer.")
  in
  let prom =
    Arg.(value & opt (some string) None
         & info [ "metrics-prom" ] ~docv:"FILE"
             ~doc:"Write an end-of-run Prometheus-style text dump to $(docv).")
  in
  let slo =
    Arg.(value & opt (some string) None
         & info [ "slo" ] ~docv:"SPEC"
             ~doc:"Judge service-level objectives after the run, e.g. \
                   $(b,xg.decide:p99<=40;seq.e2e:p99<=400;avail>=0.95). \
                   Verdicts print in the metrics block (and embed in \
                   $(b,--metrics-out)); failures never change the exit code.")
  in
  let wd =
    Arg.(value & opt ~vopt:(Some "") (some string) None
         & info [ "watchdog" ] ~docv:"SPEC"
             ~doc:"Arm the anomaly watchdog (retry storms, quiescence stalls, \
                   port starvation, gauge ceilings).  Optional $(docv) \
                   overrides the defaults: \
                   $(b,retry=64,stall=4,starve=8,ceil:NAME=LIMIT).  Trips are \
                   pure observations: they land in the OS model's anomaly \
                   ledger and the obs.watchdog coverage space, never in the \
                   simulation.")
  in
  let pack m_out m_prom m_slo wd =
    let m_watchdog =
      Option.map
        (fun spec ->
          match Watchdog.parse spec with
          | Ok c -> c
          | Error e ->
              Printf.eprintf "bad --watchdog %S: %s\n" spec e;
              exit 1)
        wd
    in
    { m_out; m_prom; m_slo; m_watchdog }
  in
  Term.(const pack $ out $ prom $ slo $ wd)

let parse_slo m =
  match m.m_slo with
  | None -> []
  | Some spec -> (
      match Slo.parse spec with
      | Ok objectives -> objectives
      | Error e ->
          Printf.eprintf "bad --slo %S: %s\n" spec e;
          exit 1)

(* Note each guard's availability on the armed recorder; called inside the
   job, as the run's [now] only the outcome knows is handed in. *)
let note_guard_avail (sys : System.t) ~now =
  if Metrics.on () then
    Array.iter
      (fun (g : System.guard) ->
        let guard = if g.System.g_id = "" then "xg" else "xg." ^ g.System.g_id in
        Metrics.note_avail ~guard
          ~down:(Xg.Xg_core.down_cycles g.System.g_core ~now)
          ~now)
      sys.System.guards

(* The stdout metrics block, delimited so tools/check_metrics.sh can strip it
   and compare against a metrics-off run byte-for-byte. *)
let emit_metrics ~mopts ~span_cells msum =
  if metrics_on mopts then begin
    let objectives = parse_slo mopts in
    let verdicts =
      Slo.evaluate objectives ~span_cells
        ~guard_hists:(Metrics.Summary.hists msum)
        ~avail:(Metrics.Summary.avails msum)
    in
    print_string "== metrics ==\n";
    Printf.printf "metrics: %d sample(s), %d job(s)\n"
      (Metrics.Summary.samples msum)
      (List.length (Metrics.Summary.blocks msum));
    let r = Metrics.Summary.replaced msum and d = Metrics.Summary.dropped msum in
    if r > 0 || d > 0 then
      Printf.printf "metrics: %d open entries replaced, %d samples dropped\n" r d;
    if mopts.m_watchdog <> None then begin
      match Metrics.Summary.trip_counts msum with
      | [] -> print_string "watchdog: no anomalies\n"
      | trips ->
          List.iter
            (fun (rule, n) -> Printf.printf "watchdog: %-14s %d trip(s)\n" rule n)
            trips
    end;
    if objectives <> [] then begin
      print_string (Xguard_stats.Table.to_string (Slo.to_table verdicts));
      let met = List.length (List.filter (fun v -> v.Slo.v_pass) verdicts) in
      Printf.printf "slo: %s (%d/%d objectives met)\n"
        (if Slo.passed verdicts then "PASS" else "FAIL")
        met (List.length verdicts)
    end;
    Option.iter
      (fun file ->
        let oc = open_out file in
        Metrics.write_jsonl oc ~period:System.sampler_period ~span_cells ~verdicts
          msum;
        close_out oc;
        Printf.printf "metrics stream written to %s\n" file)
      mopts.m_out;
    Option.iter
      (fun file ->
        let oc = open_out file in
        Metrics.write_prom oc ~span_cells msum;
        close_out oc;
        Printf.printf "prometheus dump written to %s\n" file)
      mopts.m_prom;
    print_string "== end metrics ==\n"
  end

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Fan independent runs out over $(docv) worker domains (1 = serial). \
                 Results are merged in job order, so output is byte-identical for \
                 any $(docv).")

(* ---- intra-run parallel simulation (run/stress/bench) ---- *)

let sim_j_arg =
  Arg.(value & opt (some int) None
       & info [ "sim-j" ] ~docv:"N"
           ~doc:"Shard $(i,one) run across $(docv) worker domains: conservative \
                 parallel discrete-event simulation along the guard links. \
                 Output is byte-identical for every $(docv) >= 1.  Composes \
                 with $(b,-j): each of the $(b,-j) seed jobs runs its own \
                 simulation on $(docv) workers.  Requires a guard topology \
                 with ordered, fault-free links (no $(b,--drop)/$(b,--recover)/\
                 jitter).")

(* Validate --sim-j against the final config (fault/recovery flags applied),
   so ineligible combinations fail with a reason instead of mid-run. *)
let check_sim_j ~sim_j cfg =
  match sim_j with
  | None -> None
  | Some j ->
      if j < 1 then begin
        Printf.eprintf "--sim-j must be >= 1\n";
        exit 1
      end;
      (match Pdes.check_config cfg with
      | Ok () -> Some j
      | Error e ->
          Printf.eprintf "--sim-j: %s\n" e;
          exit 1)

(* ---- lossy-link fault injection (stress/fuzz/campaign) ---- *)

let fault_drop_arg =
  Arg.(value & opt float 0.0
       & info [ "fault-drop" ] ~docv:"P"
           ~doc:"Drop each XG-link message with probability $(docv); any non-zero \
                 fault probability also enables the link reliability layer.")

let fault_dup_arg =
  Arg.(value & opt float 0.0
       & info [ "fault-dup" ] ~docv:"P"
           ~doc:"Duplicate each XG-link message with probability $(docv).")

let fault_corrupt_arg =
  Arg.(value & opt float 0.0
       & info [ "fault-corrupt" ] ~docv:"P"
           ~doc:"Corrupt each XG-link message's payload with probability $(docv).")

let fault_delay_arg =
  Arg.(value & opt float 0.0
       & info [ "fault-delay" ] ~docv:"P"
           ~doc:"Delay each XG-link message by a random 1..32 extra cycles with \
                 probability $(docv).")

let fault_script_arg =
  Arg.(value & opt_all string []
       & info [ "fault-script" ] ~docv:"SPEC"
           ~doc:"Deterministic fault $(b,KIND:N[:NEEDLE]) — hit the Nth link message \
                 whose trace text contains NEEDLE with KIND \
                 (drop|dup|corrupt|kill|delay@CYCLES).  Repeatable; implies the \
                 reliability layer.")

let reliable_link_flag =
  Arg.(value & flag
       & info [ "reliable-link" ]
           ~doc:"Run the link's seq+checksum reliability layer even with no \
                 injected faults (for overhead measurements).")

let apply_link_faults ~drop ~dup ~corrupt ~delay ~scripts ~reliable cfg =
  let scripts =
    List.map
      (fun s ->
        match Network.Fault.script_of_string s with
        | Ok sc -> sc
        | Error e ->
            Printf.eprintf "bad --fault-script %S: %s\n" s e;
            exit 1)
      scripts
  in
  let f =
    { Network.Fault.drop; duplicate = dup; corrupt; delay; max_delay = 32 }
  in
  if reliable || scripts <> [] || Network.Fault.active f then
    { cfg with Config.link_faults = Some f; Config.link_fault_scripts = scripts }
  else cfg

(* ---- recovery policy and hang budgets (stress/fuzz/campaign) ---- *)

let recover_flag =
  Arg.(value & flag
       & info [ "recover" ]
           ~doc:"After a quarantine, reset the link and re-admit the accelerator \
                 on probation instead of killing it for good (default recovery \
                 policy; see DESIGN.md section 12).")

let recover_lives_arg =
  Arg.(value & opt (some int) None
       & info [ "recover-lives" ] ~docv:"K"
           ~doc:"Permanently kill the link after $(docv) quarantines.  Implies \
                 $(b,--recover).")

let budget_req_arg =
  Arg.(value & opt (some int) None
       & info [ "budget-req" ] ~docv:"CYCLES"
           ~doc:"Hang budget for the request->decision phase: an accelerator \
                 request the guard has not decided within $(docv) cycles counts \
                 as a link fault.")

let budget_inv_arg =
  Arg.(value & opt (some int) None
       & info [ "budget-inv" ] ~docv:"CYCLES"
           ~doc:"Hang budget for the invalidate->ack phase.  Trips strictly \
                 before the coarse G2c timeout when set below it.")

let budget_fetch_arg =
  Arg.(value & opt (some int) None
       & info [ "budget-fetch" ] ~docv:"CYCLES"
           ~doc:"Hang budget for the host fetch->data phase.")

let apply_recovery ~recover ~lives ~breq ~binv ~bfetch cfg =
  (* Both knobs default to the historical behaviour: no flag, no config
     change, byte-identical runs. *)
  let cfg =
    if recover || lives <> None then
      { cfg with
        Config.recovery = Some (Xg.Xg_core.make_recovery ?permakill_after:lives ()) }
    else cfg
  in
  if breq <> None || binv <> None || bfetch <> None then
    { cfg with
      Config.budgets = { Xg.Xg_core.req_decide = breq; inv_ack = binv; fetch_data = bfetch } }
  else cfg

let injected_total counts =
  List.fold_left
    (fun n (k, v) ->
      if String.length k > 9 && String.sub k 0 9 = "injected." then n + v else n)
    0 counts

let count_of counts label = Option.value ~default:0 (List.assoc_opt label counts)

(* The trace ring buffer is armed process-wide (Trace.with_armed), so traced
   sweeps must stay on one domain. *)
let check_trace_jobs ~jobs tr =
  if jobs > 1 && tr <> None then begin
    Printf.eprintf "--trace/--trace-out require -j 1\n";
    exit 1
  end

let maybe_armed tr f = match tr with None -> f () | Some tr -> Trace.with_armed tr f

let tail_events = 60

(* Print a dumped trail, or write it to --trace-out. *)
let emit_trail ~trace_out ~header text =
  if text <> "" then
    match trace_out with
    | None -> Printf.printf "%s\n%s\n" header text
    | Some file ->
        let oc = open_out file in
        Printf.fprintf oc "%s\n%s\n" header text;
        close_out oc;
        Printf.printf "event trail written to %s\n" file

let print_coverage_sets sets =
  List.iter
    (fun (_, space, groups) ->
      print_string (Coverage.to_string (Coverage.analyze space groups));
      print_newline ())
    sets

(* ---- run ---- *)

let run_cmd =
  let workload_arg =
    let doc = "Workload: streaming, blocked, graph, write-coalesce, producer-consumer." in
    Arg.(value & opt string "blocked" & info [ "w"; "workload" ] ~docv:"WORKLOAD" ~doc)
  in
  let action config topology workload seed sim_j trace trace_out spans spans_out mopts =
    with_system_config ~topology config seed (fun cfg ->
        match find_workload workload with
        | None ->
            Printf.eprintf "unknown workload %S\n" workload;
            exit 1
        | Some w ->
            let sim_j = check_sim_j ~sim_j cfg in
            let tr = make_trace ~trace ~trace_out in
            (* Metrics always ride an armed span recorder (quantile sampling
               reads it); the span tables stay opt-in via --spans. *)
            let rec_ =
              if metrics_on mopts then
                Some (Spans.create ~timeline:(spans_out <> None) ())
              else make_recorder ~spans ~spans_out
            in
            let mrec =
              if metrics_on mopts then Some (Metrics.create ?watchdog:mopts.m_watchdog ())
              else None
            in
            let with_obs f =
              with_spans rec_ (fun () ->
                  match mrec with None -> f () | Some m -> Metrics.with_armed m f)
            in
            (try
               let r = with_obs (fun () -> Perf.run ?trace:tr ?sim_j cfg w) in
               Printf.printf "configuration      %s\n" r.Perf.config_name;
               Printf.printf "workload           %s (%s)\n" w.W.name w.W.description;
               Printf.printf "cycles             %d\n" r.Perf.cycles;
               Printf.printf "accel accesses     %d\n" r.Perf.accel_accesses;
               Printf.printf "mean latency       %.1f cycles\n" r.Perf.mean_accel_latency;
               Printf.printf "p99 latency        %d cycles\n" r.Perf.p99_accel_latency;
               Printf.printf "host bytes         %d\n" r.Perf.host_bytes;
               Printf.printf "link bytes         %d\n" r.Perf.link_bytes;
               Printf.printf "guard violations   %d\n" r.Perf.violations;
               Option.iter
                 (fun rc ->
                   let sum = Spans.summary rc in
                   if spans || spans_out <> None then print_span_summary sum;
                   emit_spans_out ~spans_out [ (w.W.name, rc) ];
                   Option.iter
                     (fun m ->
                       emit_metrics ~mopts
                         ~span_cells:(Spans.Summary.cells sum)
                         (Metrics.summary ~label:"run" m))
                     mrec)
                 rec_
             with e ->
               Option.iter
                 (fun tr ->
                   emit_trail ~trace_out
                     ~header:
                       (Printf.sprintf "-- event trail, last %d events (replay with --seed %d) --"
                          tail_events cfg.Config.seed)
                     (Trace.dump ~last:tail_events tr))
                 tr;
               Printf.eprintf "run failed: %s\n" (Printexc.to_string e);
               exit 1))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a workload on one configuration")
    Term.(const action $ config_arg $ topology_arg $ workload_arg $ seed_arg $ sim_j_arg
          $ trace_flag $ trace_out_arg $ spans_flag $ spans_out_arg $ metrics_term)

(* ---- stress ---- *)

let stress_cmd =
  let ops_arg =
    Arg.(value & opt int 500 & info [ "ops" ] ~docv:"N" ~doc:"Operations per core.")
  in
  let seeds_arg =
    Arg.(value & opt int 5 & info [ "seeds" ] ~docv:"N" ~doc:"Number of seeds to sweep.")
  in
  let action config topology seed ops seeds jobs sim_j trace trace_out coverage spans
      spans_out mopts drop dup corrupt delay scripts reliable recover lives breq binv
      bfetch =
    with_system_config ~topology config seed (fun base ->
        let base =
          apply_link_faults ~drop ~dup ~corrupt ~delay ~scripts ~reliable base
        in
        let base = apply_recovery ~recover ~lives ~breq ~binv ~bfetch base in
        let sim_j = check_sim_j ~sim_j base in
        let tr = make_trace ~trace ~trace_out in
        check_trace_jobs ~jobs tr;
        (* Each seed is one pool job producing its report line, optional
           failure trail and coverage groups; printing happens afterwards in
           seed order, so -j N output is byte-identical to -j 1. *)
        let results =
          Pool.map ~workers:jobs ~jobs:seeds (fun i ->
              let s = seed + i in
              let cfg = Config.stress_sized { base with Config.seed = s } in
              let rec_ =
                if metrics_on mopts then
                  Some (Spans.create ~timeline:(spans_out <> None) ())
                else make_recorder ~spans ~spans_out
              in
              let mrec =
                if metrics_on mopts then
                  Some (Metrics.create ?watchdog:mopts.m_watchdog ())
                else None
              in
              let run_body () =
                match sim_j with
                | Some j ->
                    (* One tester per domain over disjoint address slices —
                       comparable across any --sim-j value, not with the
                       shared-address sequential tester above. *)
                    Option.iter Trace.clear tr;
                    maybe_armed tr (fun () ->
                        Pdes.run_stress ~workers:j ~seed:s ~ops_per_core:ops cfg)
                | None ->
                    let sys = System.build cfg in
                    let ports = Array.append sys.System.cpu_ports sys.System.accel_ports in
                    Option.iter Trace.clear tr;
                    let o =
                      maybe_armed tr (fun () ->
                          Tester.run ~engine:sys.System.engine ~rng:(Rng.create ~seed:(s * 7 + 1))
                            ~ports ~addresses:(Array.init 6 Addr.block) ~ops_per_core:ops ())
                    in
                    (sys, o)
              in
              let sys, o =
                with_spans rec_ (fun () ->
                    match mrec with
                    | None -> run_body ()
                    | Some m ->
                        Metrics.with_armed m (fun () ->
                            let sys, o = run_body () in
                            note_guard_avail sys ~now:o.Tester.cycles;
                            (sys, o)))
              in
              let viol = Xg.Os_model.error_count sys.System.os in
              let bad = o.Tester.data_errors > 0 || o.Tester.deadlocked || viol > 0 in
              let link = sys.System.link_stats () in
              let link_part =
                (* Empty when the link cannot fault, so fault-free output is
                   byte-identical to the historical report. *)
                if link = [] then ""
                else
                  Printf.sprintf " link[inj=%d retx=%d q=%b]" (injected_total link)
                    (count_of link "retransmit_frames")
                    (sys.System.quarantined ())
              in
              let recovery_part =
                (* Printed only when a recovery policy or a budget is
                   configured, so default runs stay byte-identical. *)
                let sum f =
                  Array.fold_left (fun n g -> n + f g.System.g_core) 0 sys.System.guards
                in
                let parts = [] in
                let parts =
                  if cfg.Config.budgets <> Xg.Xg_core.no_budgets then
                    Printf.sprintf "trips=%d" (sum Xg.Xg_core.budget_trips) :: parts
                  else parts
                in
                let parts =
                  if cfg.Config.recovery <> None then
                    Printf.sprintf "rejoins=%d kill=%b" (sum Xg.Xg_core.rejoins)
                      (Array.exists
                         (fun g -> Xg.Xg_core.permakilled g.System.g_core)
                         sys.System.guards)
                    :: parts
                  else parts
                in
                if parts = [] then ""
                else Printf.sprintf " rec[%s]" (String.concat " " parts)
              in
              let line =
                Printf.sprintf
                  "seed %-6d ops=%-6d data_errors=%-3d deadlock=%-5b violations=%-3d %s%s%s"
                  s o.Tester.ops_completed o.Tester.data_errors o.Tester.deadlocked viol
                  (if bad then "FAIL" else "ok")
                  link_part recovery_part
              in
              let trail =
                if bad then
                  Option.map
                    (fun tr ->
                      let addr = o.Tester.first_error_addr in
                      ( Printf.sprintf
                          "-- seed %d event trail%s (replay with --seed %d --seeds 1) --" s
                          (match addr with
                          | Some a -> Printf.sprintf " for block 0x%x" a
                          | None -> "")
                          s,
                        Trace.dump ?addr ~last:tail_events tr ))
                    tr
                else None
              in
              let cov = if coverage then Some (sys.System.coverage_sets ()) else None in
              (line, bad, trail, cov, rec_, mrec))
        in
        let failures = ref 0 in
        let cov_runs = ref [] in
        let span_sum = ref Spans.Summary.empty in
        let span_recs = ref [] in
        let metrics_sum = ref Metrics.Summary.empty in
        Array.iteri
          (fun i result ->
            match result with
            | Pool.Failed e ->
                (* Crash isolation: the wedged seed reports as a failure
                   instead of killing the sweep. *)
                incr failures;
                Printf.printf "seed %-6d CRASH %s FAIL\n" (seed + i) e
            | Pool.Done (line, bad, trail, cov, rec_, mrec) ->
                if bad then incr failures;
                Option.iter (fun c -> cov_runs := c :: !cov_runs) cov;
                Option.iter
                  (fun rc ->
                    span_sum := Spans.Summary.merge !span_sum (Spans.summary rc);
                    span_recs := (Printf.sprintf "seed %d" (seed + i), rc) :: !span_recs)
                  rec_;
                Option.iter
                  (fun m ->
                    metrics_sum :=
                      Metrics.Summary.merge !metrics_sum
                        (Metrics.summary ~label:(Printf.sprintf "seed %d" (seed + i)) m))
                  mrec;
                Printf.printf "%s\n" line;
                Option.iter (fun (header, text) -> emit_trail ~trace_out ~header text) trail)
          results;
        if coverage then begin
          match List.rev !cov_runs with
          | [] -> ()
          | first :: _ as runs ->
              List.iter
                (fun (name, space, _) ->
                  let groups =
                    List.concat_map
                      (fun run ->
                        List.concat_map (fun (n, _, gs) -> if n = name then gs else []) run)
                      runs
                  in
                  print_string (Coverage.to_string (Coverage.analyze space groups));
                  print_newline ())
                first
        end;
        if spans || spans_out <> None then print_span_summary !span_sum;
        emit_spans_out ~spans_out (List.rev !span_recs);
        emit_metrics ~mopts ~span_cells:(Spans.Summary.cells !span_sum) !metrics_sum;
        Printf.printf "%s\n" (if !failures = 0 then "PASS" else "FAIL");
        if !failures > 0 then exit 1)
  in
  Cmd.v
    (Cmd.info "stress" ~doc:"Random coherence stress test (paper section 4.1)")
    Term.(const action $ config_arg $ topology_arg $ seed_arg $ ops_arg $ seeds_arg
          $ jobs_arg $ sim_j_arg $ trace_flag $ trace_out_arg $ coverage_flag $ spans_flag
          $ spans_out_arg $ metrics_term $ fault_drop_arg $ fault_dup_arg
          $ fault_corrupt_arg $ fault_delay_arg $ fault_script_arg $ reliable_link_flag
          $ recover_flag $ recover_lives_arg $ budget_req_arg $ budget_inv_arg
          $ budget_fetch_arg)

(* ---- fuzz ---- *)

let fuzz_cmd =
  let mute_arg =
    Arg.(value & flag & info [ "mute" ] ~doc:"The accelerator never answers invalidations.")
  in
  let timeout_arg =
    Arg.(value & opt (some int) None
         & info [ "timeout" ] ~docv:"CYCLES"
             ~doc:"Override the guard's invalidation timeout.  A huge value with \
                   $(b,--mute) disables the paper's timeout defense and forces a \
                   deadlock, to exercise the $(b,--trace) forensics path.")
  in
  let seeds_arg =
    Arg.(value & opt int 1
         & info [ "seeds" ] ~docv:"N"
             ~doc:"Sweep $(docv) consecutive seeds; outcomes are merged \
                   (Fuzz_tester.merge) into one report.")
  in
  let chaos_period_arg =
    Arg.(value & opt (some int) None
         & info [ "chaos-period" ] ~docv:"CYCLES"
             ~doc:"Cycles between chaos-accelerator injections (smaller = denser \
                   bombardment).")
  in
  let chaos_respond_arg =
    Arg.(value & opt (some float) None
         & info [ "chaos-respond-prob" ] ~docv:"P"
             ~doc:"Probability the chaos accelerator answers an Invalidate at all \
                   (with a random, possibly wrong, response).  0.0 never answers — \
                   the G2c-timeout path.")
  in
  let chaos_requests_only_flag =
    Arg.(value & flag
         & info [ "chaos-requests-only" ]
             ~doc:"Inject only syntactically valid requests, no spontaneous \
                   responses.")
  in
  let chaos_tarpit_arg =
    Arg.(value & opt (some int) None
         & info [ "chaos-tarpit" ] ~docv:"CYCLES"
             ~doc:"Slow-but-honest mode: answer every Invalidate with a correct \
                   Inv_ack exactly $(docv) cycles late.  With $(b,--budget-inv) \
                   below $(docv), every invalidation trips the budget; without \
                   budgets only the coarse G2c timeout can notice.  Overrides \
                   $(b,--chaos-respond-prob).")
  in
  let action config topology seed seeds jobs mute timeout trace trace_out coverage spans
      spans_out mopts drop dup corrupt delay scripts reliable chaos_period chaos_respond
      chaos_requests_only chaos_tarpit recover lives breq binv bfetch =
    with_system_config ~topology config seed (fun cfg ->
        if not (Config.uses_xg cfg) then begin
          Printf.eprintf "fuzzing needs a Crossing Guard configuration\n";
          exit 1
        end;
        let cfg =
          apply_link_faults ~drop ~dup ~corrupt ~delay ~scripts ~reliable cfg
        in
        let cfg = apply_recovery ~recover ~lives ~breq ~binv ~bfetch cfg in
        let cfg =
          match timeout with None -> cfg | Some t -> { cfg with Config.xg_timeout = t }
        in
        (* --mute is shorthand for the never-answer chaos shape; explicit
           chaos flags compose with (and refine) it. *)
        let respond_probability = if mute then Some 0.0 else chaos_respond in
        let requests_only = if mute || chaos_requests_only then Some true else None in
        let tr = make_trace ~trace ~trace_out in
        check_trace_jobs ~jobs tr;
        let results =
          Pool.map ~workers:jobs ~jobs:seeds (fun i ->
              let cfg = { cfg with Config.seed = seed + i } in
              let rec_ =
                if metrics_on mopts then
                  Some (Spans.create ~timeline:(spans_out <> None) ())
                else make_recorder ~spans ~spans_out
              in
              let mrec =
                if metrics_on mopts then
                  Some (Metrics.create ?watchdog:mopts.m_watchdog ())
                else None
              in
              Option.iter Trace.clear tr;
              let body () =
                Fuzz.run cfg ?chaos_period ?respond_probability ?requests_only
                  ?tarpit:chaos_tarpit ?trace:tr ()
              in
              let o =
                with_spans rec_ (fun () ->
                    match mrec with
                    | None -> body ()
                    | Some m -> Metrics.with_armed m body)
              in
              (o, rec_, mrec))
        in
        let pool_crashes = ref 0 in
        let merged = ref None in
        let span_sum = ref Spans.Summary.empty in
        let span_recs = ref [] in
        let metrics_sum = ref Metrics.Summary.empty in
        Array.iteri
          (fun i result ->
            match result with
            | Pool.Failed e ->
                incr pool_crashes;
                Printf.printf "seed %-6d CRASH %s FAIL\n" (seed + i) e
            | Pool.Done (o, rec_, mrec) ->
                Option.iter
                  (fun rc ->
                    span_sum := Spans.Summary.merge !span_sum (Spans.summary rc);
                    span_recs := (Printf.sprintf "seed %d" (seed + i), rc) :: !span_recs)
                  rec_;
                Option.iter
                  (fun m ->
                    metrics_sum :=
                      Metrics.Summary.merge !metrics_sum
                        (Metrics.summary ~label:(Printf.sprintf "seed %d" (seed + i)) m))
                  mrec;
                if seeds > 1 then
                  Printf.printf
                    "seed %-6d chaos=%-6d ops=%d/%d crashed=%-3s deadlock=%-5b violations=%-4d %s\n"
                    o.Fuzz.seed o.Fuzz.chaos_messages o.Fuzz.cpu_ops_completed
                    o.Fuzz.cpu_ops_expected
                    (match o.Fuzz.crashed with Some _ -> "yes" | None -> "no")
                    o.Fuzz.deadlocked o.Fuzz.violations
                    (if o.Fuzz.crashed <> None || o.Fuzz.deadlocked then "FAIL" else "ok");
                merged := Some (match !merged with None -> o | Some m -> Fuzz.merge m o))
          results;
        (match !merged with None -> Printf.printf "no run completed\n"; exit 1 | Some _ -> ());
        let o = Option.get !merged in
        Printf.printf "chaos msgs sent    %d\n" o.Fuzz.chaos_messages;
        Printf.printf "invals ignored     %d\n" o.Fuzz.invalidations_ignored;
        Printf.printf "cpu ops            %d/%d\n" o.Fuzz.cpu_ops_completed o.Fuzz.cpu_ops_expected;
        Printf.printf "crashed            %s\n"
          (match o.Fuzz.crashed with Some c -> c.Fuzz.exn_text | None -> "no");
        Printf.printf "deadlocked         %b\n" o.Fuzz.deadlocked;
        Printf.printf "violations         %d\n" o.Fuzz.violations;
        List.iter
          (fun (k, n) -> Printf.printf "  %-36s %d\n" (Xg.Os_model.error_kind_to_string k) n)
          o.Fuzz.violations_by_kind;
        if o.Fuzz.link_faults <> [] then begin
          Printf.printf "link quarantined   %b\n" o.Fuzz.quarantined;
          List.iter
            (fun (k, n) -> Printf.printf "  link.%-32s %d\n" k n)
            o.Fuzz.link_faults
        end;
        (* Gated on the flags, like the link block above, so default output
           stays byte-identical. *)
        if cfg.Config.recovery <> None then begin
          Printf.printf "link rejoins       %d\n" o.Fuzz.rejoins;
          Printf.printf "permakilled        %b\n" o.Fuzz.permakilled
        end;
        if cfg.Config.budgets <> Xg.Xg_core.no_budgets then
          Printf.printf "budget trips       %d\n" o.Fuzz.budget_trips;
        if coverage then print_coverage_sets o.Fuzz.coverage_sets;
        if spans || spans_out <> None then print_span_summary !span_sum;
        emit_spans_out ~spans_out (List.rev !span_recs);
        emit_metrics ~mopts ~span_cells:(Spans.Summary.cells !span_sum) !metrics_sum;
        let tail =
          match o.Fuzz.crashed with
          | Some c -> c.Fuzz.trace_tail
          | None -> o.Fuzz.trace_tail
        in
        if tail <> [] then begin
          let dropped_line =
            (* Forensics readers must know when the ring wrapped and the trail
               is incomplete. *)
            let d = o.Fuzz.trace_dropped in
            if d = 0 then []
            else
              [ Printf.sprintf "(%d event%s dropped — ring wrapped)" d
                  (if d = 1 then "" else "s") ]
          in
          emit_trail ~trace_out
            ~header:
              (Printf.sprintf "-- failure event trail%s (replay with --seed %d) --"
                 (match o.Fuzz.first_error_addr with
                 | Some a -> Printf.sprintf " for block 0x%x" a
                 | None -> "")
                 o.Fuzz.seed)
            (String.concat "\n" (dropped_line @ List.map Trace.format_event tail))
        end;
        if o.Fuzz.crashed <> None || o.Fuzz.deadlocked || !pool_crashes > 0 then exit 1)
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Bombard the guard with a pathological accelerator")
    Term.(const action $ config_arg $ topology_arg $ seed_arg $ seeds_arg $ jobs_arg
          $ mute_arg $ timeout_arg $ trace_flag $ trace_out_arg $ coverage_flag
          $ spans_flag $ spans_out_arg $ metrics_term $ fault_drop_arg $ fault_dup_arg
          $ fault_corrupt_arg $ fault_delay_arg $ fault_script_arg $ reliable_link_flag
          $ chaos_period_arg $ chaos_respond_arg $ chaos_requests_only_flag
          $ chaos_tarpit_arg $ recover_flag $ recover_lives_arg $ budget_req_arg
          $ budget_inv_arg $ budget_fetch_arg)

(* ---- campaign ---- *)

let campaign_cmd =
  let config_arg =
    let doc =
      "Configuration to sweep, or $(b,all) for the full 12-configuration matrix. \
       Known: " ^ String.concat ", " config_names ^ "."
    in
    Arg.(value & opt string "all" & info [ "c"; "config" ] ~docv:"CONFIG" ~doc)
  in
  let seeds_arg =
    Arg.(value & opt int 20
         & info [ "seeds" ] ~docv:"N" ~doc:"Runs per configuration per campaign kind.")
  in
  let kind_arg =
    let kinds = [ ("stress", Campaign.Stress); ("fuzz", Campaign.Fuzz); ("both", Campaign.Both) ] in
    Arg.(value & opt (enum kinds) Campaign.Both
         & info [ "kind" ] ~docv:"KIND"
             ~doc:"$(b,stress) (random coherence tester, every configuration), \
                   $(b,fuzz) (chaos accelerator, XG configurations) or $(b,both).")
  in
  let ops_arg =
    Arg.(value & opt int 500
         & info [ "ops" ] ~docv:"N" ~doc:"Stress operations per core per run.")
  in
  let cpu_ops_arg =
    Arg.(value & opt int 300
         & info [ "cpu-ops" ] ~docv:"N" ~doc:"Checked CPU operations per core per fuzz run.")
  in
  let action config topology seeds jobs kind ops cpu_ops seed coverage spans mopts trace
      trace_out drop dup corrupt delay scripts reliable recover lives breq binv bfetch =
    let configs =
      match topology with
      | Some spec -> [ Config.of_topology (parse_topology spec) ]
      | None ->
          if config = "all" then Config.all_configurations ()
          else (
            match find_config config with
            | Some c -> [ c ]
            | None ->
                Printf.eprintf "unknown configuration %S\nknown: all, %s\n" config
                  (String.concat ", " config_names);
                exit 1)
    in
    let configs =
      List.map (apply_link_faults ~drop ~dup ~corrupt ~delay ~scripts ~reliable) configs
    in
    let configs = List.map (apply_recovery ~recover ~lives ~breq ~binv ~bfetch) configs in
    let tr = make_trace ~trace ~trace_out in
    check_trace_jobs ~jobs tr;
    let result =
      Campaign.run ~workers:jobs ~collect_coverage:coverage ~stress_ops:ops
        ~fuzz_cpu_ops:cpu_ops ~base_seed:seed ~spans ~metrics:(metrics_on mopts)
        ?watchdog:mopts.m_watchdog ?trace:tr kind ~configs ~seeds ()
    in
    print_string (Campaign.render result);
    emit_metrics ~mopts
      ~span_cells:(Spans.Summary.cells result.Campaign.span_total)
      result.Campaign.metrics;
    (* All shards' failure trails go out in one emit so --trace-out holds the
       full set (emit_trail truncates its file on every call). *)
    (match result.Campaign.trails with
    | [] -> ()
    | trails ->
        emit_trail ~trace_out ~header:"== campaign failure trails =="
          (String.concat "\n" (List.map (fun (h, t) -> h ^ "\n" ^ t) trails)));
    if not (Campaign.passed result) then exit 1
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Sharded stress/fuzz sweep over configurations x seeds (paper section 4)"
       ~man:
         [
           `S Manpage.s_description;
           `P "Shards the paper's evaluation matrix — configurations x seeds, for \
               the random coherence tester and the guard fuzzer — into independent \
               jobs executed by a fixed pool of worker domains.  Each job's seed is \
               derived deterministically from the base seed and the job's position, \
               outcomes are merged in job order with the pure merge functions of \
               the stats/coverage/harness layers, and the rendered report is \
               byte-identical for any $(b,-j).  A crashing job is isolated and \
               reported as a failed run for its configuration.";
         ])
    Term.(const action $ config_arg $ topology_arg $ seeds_arg $ jobs_arg $ kind_arg
          $ ops_arg $ cpu_ops_arg $ seed_arg $ coverage_flag $ spans_flag $ metrics_term
          $ trace_flag $ trace_out_arg $ fault_drop_arg $ fault_dup_arg
          $ fault_corrupt_arg $ fault_delay_arg $ fault_script_arg $ reliable_link_flag
          $ recover_flag $ recover_lives_arg $ budget_req_arg $ budget_inv_arg
          $ budget_fetch_arg)

(* ---- report ---- *)

(* The health-dashboard half of `xguard report`: merge one or more
   xguard-metrics-v1 streams (campaign shards, separate runs) into one
   terminal — and optionally HTML — health report. *)

module Table = Xguard_stats.Table
module Histogram = Xguard_stats.Histogram

let read_lines file =
  let ic =
    try open_in file
    with Sys_error e ->
      Printf.eprintf "cannot read metrics stream: %s\n" e;
      exit 1
  in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  List.rev !lines

let hist_cells h =
  let q p = match Histogram.quantile h p with None -> "-" | Some v -> Table.cell_int v in
  [ Table.cell_int (Histogram.count h); q 0.5; q 0.99; q 1.0 ]

(* Sum availability triples per guard, first-seen order. *)
let avail_rows avails =
  List.fold_left
    (fun acc (g, down, now) ->
      let rec bump = function
        | [] -> [ (g, down, now) ]
        | (g', d', n') :: rest ->
            if g' = g then (g', d' + down, n' + now) :: rest
            else (g', d', n') :: bump rest
      in
      bump acc)
    [] avails

let health_tables rep ~objectives =
  let tables = ref [] in
  let add t = tables := t :: !tables in
  let streams = Metrics.Report.streams rep in
  let t = Table.create ~title:"Merged metric streams" ~columns:[ "stream"; "samples" ] in
  List.iter (fun (name, n) -> Table.add_row t [ name; Table.cell_int n ]) streams;
  add t;
  (match Metrics.Report.guard_hists rep with
  | [] -> ()
  | hists ->
      let t =
        Table.create ~title:"Per-guard latency (cycles)"
          ~columns:[ "guard"; "metric"; "n"; "p50"; "p99"; "max" ]
      in
      List.iter
        (fun ((guard, metric), h) -> Table.add_row t ([ guard; metric ] @ hist_cells h))
        hists;
      add t);
  (match Metrics.Report.span_cells rep with
  | [] -> ()
  | cells ->
      let t =
        Table.create ~title:"Segment latency (cycles)"
          ~columns:[ "segment"; "txn"; "n"; "p50"; "p99"; "max" ]
      in
      List.iter
        (fun (seg, txn, h) -> Table.add_row t ([ seg; txn ] @ hist_cells h))
        cells;
      add t);
  (match avail_rows (Metrics.Report.avails rep) with
  | [] -> ()
  | rows ->
      let t =
        Table.create ~title:"Guard availability"
          ~columns:[ "guard"; "down"; "cycles"; "availability" ]
      in
      List.iter
        (fun (g, down, now) ->
          let a = if now = 0 then 1.0 else 1.0 -. (float_of_int down /. float_of_int now) in
          Table.add_row t
            [ g; Table.cell_int down; Table.cell_int now; Printf.sprintf "%.4f" a ])
        rows;
      add t);
  let trips = Metrics.Report.trips rep in
  (match trips with
  | [] -> ()
  | _ ->
      let t =
        Table.create ~title:"Watchdog trips"
          ~columns:[ "rule"; "ts"; "stream"; "detail" ]
      in
      List.iter
        (fun (rule, ts, stream, detail) ->
          Table.add_row t [ rule; Table.cell_int ts; stream; detail ])
        trips;
      add t);
  (* SLO verdicts: re-judged over the merged data when --slo was given,
     otherwise the verdicts each stream embedded. *)
  let verdicts =
    match objectives with
    | [] ->
        List.map snd (Metrics.Report.verdicts rep)
    | objectives ->
        Slo.evaluate objectives
          ~span_cells:(Metrics.Report.span_cells rep)
          ~guard_hists:(Metrics.Report.guard_hists rep)
          ~avail:(Metrics.Report.avails rep)
  in
  if verdicts <> [] then
    add (Slo.to_table ~title:"SLO verdicts" verdicts);
  (List.rev !tables, verdicts, trips)

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_html_report file ~healthy ~status tables =
  let oc = open_out file in
  output_string oc
    "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n\
     <title>xguard health report</title>\n\
     <style>\n\
     body{font-family:system-ui,sans-serif;margin:2em;max-width:72em}\n\
     h1{font-size:1.4em} h2{font-size:1.1em;margin-top:1.5em}\n\
     table{border-collapse:collapse;margin:0.5em 0}\n\
     th,td{border:1px solid #ccc;padding:0.25em 0.6em;font-size:0.9em;\
     text-align:left;font-variant-numeric:tabular-nums}\n\
     th{background:#f0f0f0}\n\
     .ok{color:#0a0} .bad{color:#c00}\n\
     </style></head><body>\n<h1>xguard health report</h1>\n";
  Printf.fprintf oc "<p class=\"%s\"><strong>%s</strong></p>\n"
    (if healthy then "ok" else "bad")
    (html_escape status);
  List.iter
    (fun t ->
      Printf.fprintf oc "<h2>%s</h2>\n<table>\n<tr>" (html_escape (Table.title t));
      List.iter (fun c -> Printf.fprintf oc "<th>%s</th>" (html_escape c)) (Table.columns t);
      output_string oc "</tr>\n";
      List.iter
        (fun row ->
          output_string oc "<tr>";
          List.iter (fun c -> Printf.fprintf oc "<td>%s</td>" (html_escape c)) row;
          output_string oc "</tr>\n")
        (Table.rows t);
      output_string oc "</table>\n")
    tables;
  output_string oc "</body></html>\n";
  close_out oc

let health_report ~slo ~html files =
  let rep =
    List.fold_left
      (fun acc file ->
        match
          Metrics.Report.add_stream acc ~name:(Filename.basename file)
            (read_lines file)
        with
        | Ok rep -> rep
        | Error e ->
            Printf.eprintf "bad metrics stream %s: %s\n" file e;
            exit 1)
      Metrics.Report.empty files
  in
  let objectives =
    match slo with
    | None -> []
    | Some spec -> (
        match Slo.parse spec with
        | Ok o -> o
        | Error e ->
            Printf.eprintf "bad --slo %S: %s\n" spec e;
            exit 1)
  in
  let tables, verdicts, trips = health_tables rep ~objectives in
  let failed = List.filter (fun v -> not v.Slo.v_pass) verdicts in
  let healthy = failed = [] && trips = [] in
  let status =
    if healthy then
      Printf.sprintf "HEALTHY — %d stream(s), %d sample(s), %d/%d SLO objective(s) met"
        (List.length (Metrics.Report.streams rep))
        (Metrics.Report.samples rep)
        (List.length verdicts) (List.length verdicts)
    else
      Printf.sprintf
        "DEGRADED — %d SLO verdict(s) failing, %d watchdog trip(s) across %d stream(s)"
        (List.length failed) (List.length trips)
        (List.length (Metrics.Report.streams rep))
  in
  Printf.printf "== xguard health report ==\n%s\n\n" status;
  List.iter
    (fun t ->
      print_string (Table.to_string t);
      print_newline ())
    tables;
  Option.iter
    (fun file ->
      write_html_report file ~healthy ~status tables;
      Printf.printf "html report written to %s\n" file)
    html

let report_cmd =
  let id_arg =
    Arg.(value & pos 0 string "all" & info [] ~docv:"EXPERIMENT"
           ~doc:"Experiment id (t1 f1 f2 e1-e11 a1 a2) or 'all'.")
  in
  let quick_arg = Arg.(value & flag & info [ "quick" ] ~doc:"Reduced-size run.") in
  let metrics_files_arg =
    Arg.(value & opt_all string []
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"Merge the xguard-metrics-v1 stream in $(docv) (repeatable) \
                   into one health report — per-guard latency, availability, \
                   watchdog trips and SLO verdicts — instead of regenerating \
                   an experiment.")
  in
  let slo_arg =
    Arg.(value & opt (some string) None
         & info [ "slo" ] ~docv:"SPEC"
             ~doc:"Re-judge these objectives against the merged streams \
                   (default: show the verdicts embedded in each stream).")
  in
  let html_arg =
    Arg.(value & opt (some string) None
         & info [ "html" ] ~docv:"FILE"
             ~doc:"Also write the health report as a standalone HTML page.")
  in
  let action id quick metrics slo html =
    if metrics <> [] then health_report ~slo ~html metrics
    else
      let print (r : Experiments.report) =
        Printf.printf "== %s ==\n" r.Experiments.title;
        List.iter (fun t -> print_string (Xguard_stats.Table.to_string t); print_newline ())
          r.Experiments.tables
      in
      if id = "all" then List.iter print (Experiments.all ~quick ())
      else
        match Experiments.by_id id with
        | Some f -> print (f ~quick ())
        | None ->
            Printf.eprintf "unknown experiment %S; known: %s\n" id
              (String.concat ", " Experiments.ids);
            exit 1
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Regenerate a reproduced table/figure, or merge metric streams \
             into a health report")
    Term.(const action $ id_arg $ quick_arg $ metrics_files_arg $ slo_arg $ html_arg)

(* ---- list ---- *)

let list_cmd =
  let action () =
    Printf.printf "configurations:\n";
    List.iter (fun n -> Printf.printf "  %s\n" n) config_names;
    Printf.printf "workloads:\n";
    List.iter (fun w -> Printf.printf "  %-18s %s\n" w.W.name w.W.description) (W.all ());
    Printf.printf "experiments:\n  %s\n" (String.concat " " Experiments.ids)
  in
  Cmd.v (Cmd.info "list" ~doc:"List configurations, workloads and experiments")
    Term.(const action $ const ())

(* ---- check ---- *)

module Checker = Xguard_check.Checker

let check_cmd =
  let plan_names = List.map fst (Checker.tiny_plans ()) in
  let configs_arg =
    Arg.(value & opt_all string []
         & info [ "c"; "config" ] ~docv:"NAME"
             ~doc:("Tiny configuration(s) to check, repeatable; default all. One of: "
                   ^ String.concat ", " plan_names ^ "."))
  in
  let max_depth_arg =
    Arg.(value & opt (some int) None
         & info [ "max-depth" ] ~docv:"N" ~doc:"Decision budget per path.")
  in
  let max_states_arg =
    Arg.(value & opt (some int) None
         & info [ "max-states" ] ~docv:"N" ~doc:"Distinct-fingerprint budget.")
  in
  let no_por_flag =
    Arg.(value & flag
         & info [ "no-por" ]
             ~doc:"Branch on every same-cycle candidate instead of firing \
                   provably-commuting events directly (bigger but \
                   reduction-free state graph).")
  in
  let budget_arg =
    Arg.(value & opt (some float) None
         & info [ "budget" ] ~docv:"SECONDS"
             ~doc:"Wall-clock budget: configurations not yet started when it \
                   expires are skipped (exploration in progress is finished).")
  in
  let baseline_arg =
    Arg.(value & opt (some string) None
         & info [ "baseline" ] ~docv:"FILE"
             ~doc:"Compare each summary against $(docv) and fail on any drift \
                   in state/transition counts or set digests.")
  in
  let write_baseline_arg =
    Arg.(value & opt (some string) None
         & info [ "write-baseline" ] ~docv:"FILE"
             ~doc:"Write the summaries to $(docv) in baseline format.")
  in
  let replay_arg =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"TRAIL"
             ~doc:"Re-execute one counterexample trail (decision indices \
                   separated by ';' or ',') on the selected configuration \
                   with the event trace armed, and dump the trail.")
  in
  let coverage_pairs_flag =
    Arg.(value & flag
         & info [ "coverage" ]
             ~doc:"Accumulate and print every (state x event) coverage pair \
                   hit anywhere in the explored tree, per space (implies -j 1).")
  in
  let baseline_line name (s : Checker.summary) =
    Printf.sprintf
      "{ \"name\": %S, \"states\": %d, \"transitions\": %d, \"states_md5\": %S, \"edges_md5\": %S }"
      name s.Checker.states s.Checker.transitions s.Checker.states_digest
      s.Checker.edges_digest
  in
  let parse_baseline file =
    let ic = open_in file in
    let entries = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         let line =
           if String.length line > 0 && line.[String.length line - 1] = ',' then
             String.sub line 0 (String.length line - 1)
           else line
         in
         if String.length line > 8 && String.sub line 0 8 = "{ \"name\"" then
           Scanf.sscanf line
             "{ %S: %S, %S: %d, %S: %d, %S: %S, %S: %S }"
             (fun _ name _ states _ transitions _ sd _ ed ->
               entries := (name, (states, transitions, sd, ed)) :: !entries)
       done
     with End_of_file -> close_in ic);
    List.rev !entries
  in
  let action configs max_depth max_states no_por jobs budget baseline write_baseline
      replay coverage =
    let plans =
      let all = Checker.tiny_plans () in
      match configs with
      | [] -> all
      | names ->
          List.map
            (fun n ->
              match List.assoc_opt n all with
              | Some p -> (n, p)
              | None ->
                  Printf.eprintf "unknown check configuration %S\nknown: %s\n" n
                    (String.concat ", " plan_names);
                  exit 1)
            names
    in
    let adjust (name, p) =
      ( name,
        {
          p with
          Checker.max_depth = Option.value ~default:p.Checker.max_depth max_depth;
          max_states = Option.value ~default:p.Checker.max_states max_states;
          por = (not no_por) && p.Checker.por;
        } )
    in
    let plans = List.map adjust plans in
    match replay with
    | Some spec -> (
        let name, plan =
          match plans with
          | [ np ] -> np
          | _ ->
              Printf.eprintf "--replay needs exactly one --config\n";
              exit 1
        in
        let trail =
          String.split_on_char ';' (String.concat ";" (String.split_on_char ',' spec))
          |> List.filter (fun s -> String.trim s <> "")
          |> List.map (fun s -> int_of_string (String.trim s))
        in
        let outcome, events = Checker.replay plan trail in
        List.iter (fun e -> Format.printf "%a@." Trace.pp_event e) events;
        match outcome with
        | `Violation m ->
            Printf.printf "replay(%s): VIOLATION %s\n" name m;
            exit 1
        | `Terminal -> Printf.printf "replay(%s): terminal, no violation\n" name
        | `Incomplete ->
            Printf.printf "replay(%s): trail exhausted before a terminal\n" name)
    | None ->
        let t_start = Unix.gettimeofday () in
        let failed = ref false in
        let results = ref [] in
        List.iter
          (fun (name, plan) ->
            let elapsed = Unix.gettimeofday () -. t_start in
            match budget with
            | Some b when elapsed > b ->
                Printf.printf "%-20s SKIPPED (budget %.0fs exhausted)\n" name b
            | _ ->
                let t0 = Unix.gettimeofday () in
                let r, pairs =
                  if coverage then
                    let r, pairs = Checker.covered_pairs plan in
                    (r, Some pairs)
                  else (Checker.explore ~workers:jobs plan, None)
                in
                let dt = Unix.gettimeofday () -. t0 in
                let s = r.Checker.summary and d = r.Checker.diagnostics in
                results := (name, s) :: !results;
                Printf.printf
                  "%-20s states=%d transitions=%d paths=%d decisions=%d \
                   por-collapsed=%d deepest=%d%s  (%.2fs)\n"
                  name s.Checker.states s.Checker.transitions d.Checker.paths
                  d.Checker.decisions d.Checker.por_collapsed d.Checker.deepest
                  (if d.Checker.truncated_depth > 0 || d.Checker.truncated_states then
                     " TRUNCATED"
                   else "")
                  dt;
                if d.Checker.truncated_depth > 0 || d.Checker.truncated_states then
                  failed := true;
                List.iter
                  (fun (v : Checker.violation) ->
                    failed := true;
                    Printf.printf
                      "  VIOLATION: %s\n  counterexample trail: %s\n  replay: xguard \
                       check -c %s --replay '%s'\n"
                      v.Checker.message
                      (String.concat ";" (List.map string_of_int v.Checker.trail))
                      name
                      (String.concat ";" (List.map string_of_int v.Checker.trail)))
                  s.Checker.violations;
                Option.iter
                  (List.iter (fun (space, keys) ->
                       Printf.printf "  %s: %d pairs\n    %s\n" space
                         (List.length keys) (String.concat " " keys)))
                  pairs)
          plans;
        let results = List.rev !results in
        Option.iter
          (fun file ->
            let oc = open_out file in
            output_string oc "{ \"configs\": [\n";
            List.iteri
              (fun i (name, s) ->
                output_string oc (baseline_line name s);
                if i < List.length results - 1 then output_string oc ",";
                output_string oc "\n")
              results;
            output_string oc "] }\n";
            close_out oc;
            Printf.printf "baseline written to %s\n" file)
          write_baseline;
        Option.iter
          (fun file ->
            let base = parse_baseline file in
            List.iter
              (fun (name, (s : Checker.summary)) ->
                match List.assoc_opt name base with
                | None -> Printf.printf "baseline: %s not pinned (new entry?)\n" name
                | Some (states, transitions, sd, ed) ->
                    if
                      states <> s.Checker.states
                      || transitions <> s.Checker.transitions
                      || sd <> s.Checker.states_digest
                      || ed <> s.Checker.edges_digest
                    then begin
                      failed := true;
                      Printf.printf
                        "baseline DRIFT on %s: expected states=%d transitions=%d \
                         got states=%d transitions=%d (digests %s)\n"
                        name states transitions s.Checker.states s.Checker.transitions
                        (if sd = s.Checker.states_digest && ed = s.Checker.edges_digest
                         then "match"
                         else "differ")
                    end)
              results)
          baseline;
        if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Exhaustively model-check the guard invariants on tiny configurations")
    Term.(const action $ configs_arg $ max_depth_arg $ max_states_arg $ no_por_flag
          $ jobs_arg $ budget_arg $ baseline_arg $ write_baseline_arg $ replay_arg
          $ coverage_pairs_flag)

let () =
  let doc = "Crossing Guard: mediating host-accelerator coherence interactions (reproduction)" in
  let info = Cmd.info "xguard" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; stress_cmd; fuzz_cmd; campaign_cmd; report_cmd; list_cmd; check_cmd ]))
